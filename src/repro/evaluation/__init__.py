"""Evaluation: metrics, the experiment harness, and table renderers."""

from repro.evaluation.metrics import (
    PRF,
    candidate_recall_at_k,
    cea_f_score,
    cta_f_score,
    disambiguation_f_score,
    index_recall_overlap,
    repair_f_score,
)
from repro.evaluation.harness import (
    AnnotationRun,
    run_cea_system,
    run_cta_system,
    run_disambiguation,
    run_repair,
)
from repro.evaluation.reporting import format_table, render_markdown_table

__all__ = [
    "AnnotationRun",
    "PRF",
    "candidate_recall_at_k",
    "cea_f_score",
    "cta_f_score",
    "disambiguation_f_score",
    "format_table",
    "index_recall_overlap",
    "render_markdown_table",
    "repair_f_score",
    "run_cea_system",
    "run_cta_system",
    "run_disambiguation",
    "run_repair",
]
