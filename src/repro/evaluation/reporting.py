"""Plain-text and markdown table renderers for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "render_markdown_table"]


def _stringify(rows: Sequence[Sequence[object]]) -> list[list[str]]:
    out: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:.2f}")
            else:
                rendered.append(str(value))
        out.append(rendered)
    return out


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width text table (floats rendered with two decimals)."""
    str_rows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavoured markdown table."""
    str_rows = _stringify(rows)
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
