"""Accuracy metrics for the four tasks plus index-quality measures.

The SemTab convention: precision counts correct predictions over *made*
predictions (abstentions excluded); recall counts them over all targets;
F-score is their harmonic mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.tables.table import CellRef

__all__ = [
    "PRF",
    "candidate_recall_at_k",
    "cea_f_score",
    "cta_f_score",
    "disambiguation_f_score",
    "index_recall_overlap",
    "repair_f_score",
]


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F-score triple."""

    precision: float
    recall: float
    f_score: float

    @classmethod
    def from_counts(cls, correct: int, predicted: int, total: int) -> "PRF":
        if correct < 0 or predicted < correct or total < correct:
            raise ValueError(
                f"inconsistent counts: correct={correct}, "
                f"predicted={predicted}, total={total}"
            )
        precision = correct / predicted if predicted else 0.0
        recall = correct / total if total else 0.0
        if precision + recall == 0:
            return cls(precision, recall, 0.0)
        return cls(precision, recall, 2 * precision * recall / (precision + recall))


def _prf_over_map(
    predictions: Mapping, ground_truth: Mapping
) -> PRF:
    total = len(ground_truth)
    predicted = 0
    correct = 0
    for key, truth in ground_truth.items():
        guess = predictions.get(key)
        if guess is None:
            continue
        predicted += 1
        if guess == truth:
            correct += 1
    return PRF.from_counts(correct, predicted, total)


def cea_f_score(
    predictions: Mapping[CellRef, str | None],
    ground_truth: Mapping[CellRef, str],
) -> PRF:
    """Cell-entity annotation accuracy."""
    return _prf_over_map(predictions, ground_truth)


def cta_f_score(
    predictions: Mapping[tuple[str, int], str | None],
    ground_truth: Mapping[tuple[str, int], str],
    kg: KnowledgeGraph | None = None,
    ancestor_credit: float = 0.5,
) -> PRF:
    """Column-type annotation accuracy.

    With ``kg`` supplied, predicting an *ancestor* of the true type earns
    partial credit (``ancestor_credit``), following SemTab's approximate
    scoring for okay-but-too-general types.
    """
    total = len(ground_truth)
    predicted = 0
    score = 0.0
    for key, truth in ground_truth.items():
        guess = predictions.get(key)
        if guess is None:
            continue
        predicted += 1
        if guess == truth:
            score += 1.0
        elif kg is not None and guess in kg.ancestor_types(truth):
            score += ancestor_credit
    precision = score / predicted if predicted else 0.0
    recall = score / total if total else 0.0
    if precision + recall == 0:
        return PRF(precision, recall, 0.0)
    return PRF(precision, recall, 2 * precision * recall / (precision + recall))


def disambiguation_f_score(
    predictions: Sequence[str | None], ground_truth: Sequence[str]
) -> PRF:
    """Entity-disambiguation accuracy over an aligned mention list."""
    if len(predictions) != len(ground_truth):
        raise ValueError(
            f"predictions ({len(predictions)}) and ground truth "
            f"({len(ground_truth)}) must align"
        )
    total = len(ground_truth)
    predicted = sum(1 for p in predictions if p is not None)
    correct = sum(1 for p, t in zip(predictions, ground_truth) if p == t)
    return PRF.from_counts(correct, predicted, total)


def repair_f_score(
    predictions: Mapping[CellRef, str | None],
    ground_truth: Mapping[CellRef, str],
) -> PRF:
    """Data-repair accuracy over the masked cells."""
    return _prf_over_map(predictions, ground_truth)


def candidate_recall_at_k(
    candidate_lists: Sequence[Sequence[str]],
    ground_truth: Sequence[str],
    k: int,
) -> float:
    """Fraction of queries whose true entity appears in the top-``k``."""
    if len(candidate_lists) != len(ground_truth):
        raise ValueError("candidate lists and ground truth must align")
    if not ground_truth:
        return 0.0
    hits = sum(
        1
        for candidates, truth in zip(candidate_lists, ground_truth)
        if truth in list(candidates)[:k]
    )
    return hits / len(ground_truth)


def index_recall_overlap(
    approx_ids: np.ndarray, exact_ids: np.ndarray, k: int
) -> float:
    """Mean overlap of approximate vs exact top-``k`` id sets (Figure 4).

    ``approx_ids`` / ``exact_ids`` are ``(n_queries, >=k)`` matrices; ``-1``
    entries are padding.
    """
    if approx_ids.shape[0] != exact_ids.shape[0]:
        raise ValueError("query counts differ between approximate and exact ids")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    overlaps = []
    for approx_row, exact_row in zip(approx_ids, exact_ids):
        exact_set = {int(i) for i in exact_row[:k] if i >= 0}
        if not exact_set:
            continue
        approx_set = {int(i) for i in approx_row[:k] if i >= 0}
        overlaps.append(len(approx_set & exact_set) / len(exact_set))
    return float(np.mean(overlaps)) if overlaps else 0.0
