"""Experiment harness: run an annotation system, measure accuracy and the
lookup time, exactly as the paper instruments its five application systems.

Speedups are computed as ``lookup_time(original) / lookup_time(emblookup)``
over identical query workloads; remote services contribute their modelled
network latency (see :mod:`repro.lookup.remote`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.timing import Timer

from repro.annotation.base import CeaAnnotator, annotate_column_types
from repro.annotation.doser import DoSeRDisambiguator
from repro.annotation.katara import KataraRepairer
from repro.evaluation.metrics import (
    PRF,
    cea_f_score,
    cta_f_score,
    disambiguation_f_score,
    repair_f_score,
)
from repro.kg.graph import KnowledgeGraph
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef

__all__ = [
    "AnnotationRun",
    "run_cea_system",
    "run_cta_system",
    "run_disambiguation",
    "run_repair",
]


@dataclass(frozen=True)
class AnnotationRun:
    """Outcome of one system + lookup-service + dataset combination."""

    task: str
    system: str
    lookup_name: str
    scores: PRF
    lookup_seconds: float
    queries: int
    wall_seconds: float = 0.0

    @property
    def f_score(self) -> float:
        return self.scores.f_score

    @property
    def lookup_fraction(self) -> float:
        """Share of the run's wall time spent inside lookup calls (can
        exceed 1.0 for remote services, whose modelled network latency is
        virtual and not part of the measured wall time)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.lookup_seconds / self.wall_seconds

    def speedup_over(self, other: "AnnotationRun") -> float:
        """How much faster this run's lookups were than ``other``'s."""
        if self.lookup_seconds <= 0:
            return float("inf")
        return other.lookup_seconds / self.lookup_seconds


def run_cea_system(
    annotator: CeaAnnotator, dataset: TabularDataset, kg: KnowledgeGraph
) -> AnnotationRun:
    """Run a CEA system and score it against the dataset ground truth."""
    annotator.lookup.reset_timers()
    with Timer() as timer:
        predictions = annotator.annotate_cells(dataset, kg)
    scores = cea_f_score(predictions, dataset.cea)
    return AnnotationRun(
        task="CEA",
        system=annotator.name,
        lookup_name=annotator.lookup.name,
        scores=scores,
        lookup_seconds=annotator.lookup.total_lookup_seconds,
        queries=annotator.lookup.query_time.count,
        wall_seconds=timer.elapsed,
    )


def run_cta_system(
    annotator: CeaAnnotator, dataset: TabularDataset, kg: KnowledgeGraph
) -> AnnotationRun:
    """Run CEA then derive CTA; scored with ancestor partial credit."""
    annotator.lookup.reset_timers()
    with Timer() as timer:
        cea_predictions = annotator.annotate_cells(dataset, kg)
        cta_predictions = annotate_column_types(dataset, kg, cea_predictions)
    scores = cta_f_score(cta_predictions, dataset.cta, kg=kg)
    return AnnotationRun(
        task="CTA",
        system=annotator.name,
        lookup_name=annotator.lookup.name,
        scores=scores,
        lookup_seconds=annotator.lookup.total_lookup_seconds,
        queries=annotator.lookup.query_time.count,
        wall_seconds=timer.elapsed,
    )


def run_disambiguation(
    disambiguator: DoSeRDisambiguator,
    dataset: TabularDataset,
    kg: KnowledgeGraph,
) -> AnnotationRun:
    """Entity disambiguation over each table's subject column."""
    disambiguator.lookup.reset_timers()
    predictions: list[str | None] = []
    truths: list[str] = []
    with Timer() as timer:
        for table in dataset.tables:
            refs = [
                CellRef(table.table_id, r, 0)
                for r in range(table.num_rows)
                if CellRef(table.table_id, r, 0) in dataset.cea
            ]
            mentions = [table.cell(ref.row, ref.col) for ref in refs]
            keep = [i for i, m in enumerate(mentions) if m]
            if not keep:
                continue
            resolved = disambiguator.disambiguate(
                [mentions[i] for i in keep], kg
            )
            predictions.extend(resolved)
            truths.extend(dataset.cea[refs[i]] for i in keep)
    scores = disambiguation_f_score(predictions, truths)
    return AnnotationRun(
        task="EA",
        system=disambiguator.name,
        lookup_name=disambiguator.lookup.name,
        scores=scores,
        lookup_seconds=disambiguator.lookup.total_lookup_seconds,
        queries=disambiguator.lookup.query_time.count,
        wall_seconds=timer.elapsed,
    )


def run_repair(
    repairer: KataraRepairer,
    dataset: TabularDataset,
    kg: KnowledgeGraph,
    mask_fraction: float = 0.1,
    seed: int = 97,
) -> AnnotationRun:
    """Mask cells, repair them, and score recovered entities."""
    masked_dataset, _ = dataset.with_masked_cells(mask_fraction, seed=seed)
    masked_refs = {
        ref
        for ref in masked_dataset.annotated_cells()
        if not masked_dataset.cell_text(ref)
    }
    truth = {ref: dataset.cea[ref] for ref in masked_refs}
    repairer.lookup.reset_timers()
    with Timer() as timer:
        predictions = repairer.repair(masked_dataset, kg)
    scores = repair_f_score(predictions, truth)
    return AnnotationRun(
        task="DR",
        system=repairer.name,
        lookup_name=repairer.lookup.name,
        scores=scores,
        lookup_seconds=repairer.lookup.total_lookup_seconds,
        queries=repairer.lookup.query_time.count,
        wall_seconds=timer.elapsed,
    )
