"""JenTab-style annotator: create / filter / select candidate pipeline.

JenTab (SemTab 2020) generates candidates with several query
reformulations (raw cell, cleaned cell, token-sorted cell), filters them by
the column's majority type, and selects the survivor with the best string
score, breaking ties toward better-connected entities.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.annotation.base import CeaAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate
from repro.tables.table import CellRef
from repro.text.distance import levenshtein_ratio
from repro.text.tokenize import normalize, word_tokens

__all__ = ["JenTabAnnotator"]


class JenTabAnnotator(CeaAnnotator):
    name = "jentab"

    # -- create: multi-query candidate generation -----------------------------------

    def _candidates(self, texts: list[str]) -> list[list[Candidate]]:
        primary = super()._candidates(texts)
        # Reformulate cells whose primary lookup came back weak.
        retry_positions = [
            i for i, cands in enumerate(primary) if len(cands) < self.candidate_k // 2
        ]
        retry_texts = []
        for i in retry_positions:
            tokens = sorted(word_tokens(texts[i]))
            retry_texts.append(" ".join(tokens) if tokens else texts[i])
        if retry_texts:
            extra_lists = self.lookup.lookup_batch(
                retry_texts, self.candidate_k, type_filter=self.type_filter
            )
            for i, extra in zip(retry_positions, extra_lists):
                seen = {c.entity_id for c in primary[i]}
                primary[i] = primary[i] + [
                    c for c in extra if c.entity_id not in seen
                ]
        return primary

    # -- filter + select ---------------------------------------------------------------

    def _disambiguate(
        self,
        kg: KnowledgeGraph,
        table_id: str,
        refs: list[CellRef],
        texts: list[str],
        candidates: list[list[Candidate]],
    ) -> dict[CellRef, str | None]:
        # Filter: majority type per column, voted by each cell's best
        # candidates (rank-weighted) so corpus-wide type priors don't
        # drown out the column signal.
        column_votes: dict[int, Counter[str]] = defaultdict(Counter)
        for ref, cands in zip(refs, candidates):
            for rank, candidate in enumerate(cands[:3]):
                weight = 3 - rank
                for type_id in kg.entity(candidate.entity_id).type_ids:
                    column_votes[ref.col][type_id] += weight
        majority_type: dict[int, str | None] = {
            col: (votes.most_common(1)[0][0] if votes else None)
            for col, votes in column_votes.items()
        }

        predictions: dict[CellRef, str | None] = {}
        for ref, text, cands in zip(refs, texts, candidates):
            if not cands:
                predictions[ref] = None
                continue
            query = normalize(text)
            column_type = majority_type.get(ref.col)
            filtered = [
                c
                for c in cands
                if column_type is None
                or self._type_compatible(kg, c.entity_id, column_type)
            ]
            pool = filtered or cands  # fall back when the filter empties
            best_id: str | None = None
            best_key: tuple[float, int] | None = None
            for candidate in pool:
                entity = kg.entity(candidate.entity_id)
                lexical = max(
                    levenshtein_ratio(query, normalize(m)) for m in entity.mentions
                )
                degree = len(kg.facts_about(candidate.entity_id)) + len(
                    kg.facts_mentioning(candidate.entity_id)
                )
                key = (lexical, degree)
                if best_key is None or key > best_key:
                    best_key = key
                    best_id = candidate.entity_id
            predictions[ref] = best_id
        return predictions

    @staticmethod
    def _type_compatible(
        kg: KnowledgeGraph, entity_id: str, column_type: str
    ) -> bool:
        """True when the entity has ``column_type`` directly or via a
        supertype (a ``capital`` belongs in a ``city`` column)."""
        type_ids = kg.entity(entity_id).type_ids
        if column_type in type_ids:
            return True
        return any(
            column_type in kg.ancestor_types(type_id) for type_id in type_ids
        )
