"""Shared machinery for the annotation systems.

Each Cell-Entity-Annotation (CEA) system maps every annotated cell to an
entity id (or ``None`` when it abstains).  Column-Type Annotation (CTA) is
derived from CEA output by majority vote over the column's entity types,
preferring the most specific type — the strategy all three SemTab systems
share.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef

__all__ = ["CeaAnnotator", "annotate_column_types", "group_cells_by_table"]


def group_cells_by_table(
    dataset: TabularDataset,
) -> dict[str, list[CellRef]]:
    """Annotated cells grouped per table, in (row, col) order."""
    grouped: dict[str, list[CellRef]] = defaultdict(list)
    for ref in dataset.annotated_cells():
        grouped[ref.table_id].append(ref)
    return grouped


class CeaAnnotator:
    """Base CEA system: candidate lookup + system-specific disambiguation.

    Parameters
    ----------
    lookup_service:
        Candidate generator (the component the paper swaps out).
    candidate_k:
        Candidates fetched per cell (the paper's applications use 20-100).
    type_filter:
        Optional entity-type id forwarded to every candidate lookup;
        requires a ``lookup_service`` with ``supports_type_filter`` (the
        router or the serving engine).  Used when a column's type is
        known up front, so candidate generation scans only that type's
        index partitions.
    """

    name: str = "abstract"

    def __init__(
        self,
        lookup_service: LookupService,
        candidate_k: int = 20,
        type_filter: str | None = None,
    ):
        if candidate_k < 1:
            raise ValueError(f"candidate_k must be >= 1, got {candidate_k}")
        if type_filter is not None and not lookup_service.supports_type_filter:
            raise ValueError(
                f"{type(lookup_service).__name__} does not support "
                "type_filter"
            )
        self.lookup = lookup_service
        self.candidate_k = candidate_k
        self.type_filter = type_filter

    # -- public API -------------------------------------------------------------

    def annotate_cells(
        self, dataset: TabularDataset, kg: KnowledgeGraph
    ) -> dict[CellRef, str | None]:
        """CEA predictions for every annotated cell of ``dataset``."""
        predictions: dict[CellRef, str | None] = {}
        for table_id, refs in group_cells_by_table(dataset).items():
            table = dataset.table(table_id)
            texts = [table.cell(ref.row, ref.col) for ref in refs]
            candidate_lists = self._candidates(texts)
            table_predictions = self._disambiguate(
                kg, table_id, refs, texts, candidate_lists
            )
            predictions.update(table_predictions)
        return predictions

    # -- hooks --------------------------------------------------------------------

    def _candidates(self, texts: list[str]) -> list[list[Candidate]]:
        """Candidate generation; empty cells produce empty candidate sets."""
        non_empty = [t for t in texts if t]
        looked_up = iter(
            self.lookup.lookup_batch(
                non_empty, self.candidate_k, type_filter=self.type_filter
            )
            if non_empty
            else []
        )
        return [next(looked_up) if t else [] for t in texts]

    def _disambiguate(
        self,
        kg: KnowledgeGraph,
        table_id: str,
        refs: list[CellRef],
        texts: list[str],
        candidates: list[list[Candidate]],
    ) -> dict[CellRef, str | None]:
        raise NotImplementedError


def annotate_column_types(
    dataset: TabularDataset,
    kg: KnowledgeGraph,
    cea_predictions: dict[CellRef, str | None],
) -> dict[tuple[str, int], str | None]:
    """CTA by majority vote over CEA'd entities, most specific type wins.

    Votes are cast for each predicted entity's direct types; ancestors
    receive discounted votes so that a column mixing ``capital`` and
    ``city`` resolves to ``city`` rather than ``place``.
    """
    votes: dict[tuple[str, int], Counter[str]] = defaultdict(Counter)
    for ref, entity_id in cea_predictions.items():
        if entity_id is None or not kg.has_entity(entity_id):
            continue
        column_key = (ref.table_id, ref.col)
        for type_id in kg.entity(entity_id).type_ids:
            votes[column_key][type_id] += 1.0
            for depth, ancestor in enumerate(kg.ancestor_types(type_id), 1):
                votes[column_key][ancestor] += 1.0 / (2.0**depth)

    out: dict[tuple[str, int], str | None] = {}
    for column_key in dataset.cta:
        counter = votes.get(column_key)
        if not counter:
            out[column_key] = None
            continue
        # Highest vote; ties broken toward the more specific (deeper) type.
        best = max(
            counter.items(),
            key=lambda item: (item[1], len(kg.ancestor_types(item[0]))),
        )
        out[column_key] = best[0]
    return out
