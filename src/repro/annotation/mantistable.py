"""MantisTable-style annotator: column-type-consistent scoring.

MantisTable annotates in phases: candidate generation, column-level type
inference from the candidates' types, then candidate re-scoring that blends
lexical similarity (Jaro-Winkler in the original) with agreement with the
inferred column type.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.annotation.base import CeaAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate
from repro.tables.table import CellRef
from repro.text.distance import jaro_winkler
from repro.text.tokenize import normalize

__all__ = ["MantisTableAnnotator"]


class MantisTableAnnotator(CeaAnnotator):
    name = "mantistable"

    def __init__(self, lookup_service, candidate_k: int = 20, type_weight: float = 0.3):
        super().__init__(lookup_service, candidate_k)
        if type_weight < 0:
            raise ValueError("type_weight must be >= 0")
        self.type_weight = type_weight

    def _disambiguate(
        self,
        kg: KnowledgeGraph,
        table_id: str,
        refs: list[CellRef],
        texts: list[str],
        candidates: list[list[Candidate]],
    ) -> dict[CellRef, str | None]:
        # Phase 2: infer the dominant type per column from top candidates.
        column_votes: dict[int, Counter[str]] = defaultdict(Counter)
        for ref, cands in zip(refs, candidates):
            for candidate in cands[:3]:
                for type_id in kg.entity(candidate.entity_id).type_ids:
                    column_votes[ref.col][type_id] += 1
        dominant_type: dict[int, str | None] = {
            col: (votes.most_common(1)[0][0] if votes else None)
            for col, votes in column_votes.items()
        }

        # Phase 3: re-score with type agreement.
        predictions: dict[CellRef, str | None] = {}
        for ref, text, cands in zip(refs, texts, candidates):
            if not cands:
                predictions[ref] = None
                continue
            query = normalize(text)
            column_type = dominant_type.get(ref.col)
            best_id: str | None = None
            best_score = -float("inf")
            for candidate in cands:
                entity = kg.entity(candidate.entity_id)
                lexical = max(
                    jaro_winkler(query, normalize(m)) for m in entity.mentions
                )
                type_bonus = (
                    1.0
                    if column_type is not None and column_type in entity.type_ids
                    else 0.0
                )
                score = lexical + self.type_weight * type_bonus
                if score > best_score:
                    best_score = score
                    best_id = candidate.entity_id
            predictions[ref] = best_id
        return predictions
