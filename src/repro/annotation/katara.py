"""Katara-style data repair: KG patterns + lookup-based imputation.

Katara (Chu et al., SIGMOD 2015) aligns table columns with KG relations
using the rows that validate, then repairs cells that violate or miss the
pattern.  Here: for each table we discover, from the unmasked rows, the KG
property that connects the subject column to each context column; a masked
context cell is imputed by following the property from the row's subject
entity, and a masked subject cell by following it backwards.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import LookupService
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table

__all__ = ["KataraRepairer"]


class KataraRepairer:
    """Pattern-discovering data repairer with a pluggable lookup service."""

    name = "katara"

    def __init__(self, lookup_service: LookupService, candidate_k: int = 20):
        if candidate_k < 1:
            raise ValueError(f"candidate_k must be >= 1, got {candidate_k}")
        self.lookup = lookup_service
        self.candidate_k = candidate_k

    def repair(
        self, dataset: TabularDataset, kg: KnowledgeGraph
    ) -> dict[CellRef, str | None]:
        """Impute entity ids for all masked (empty) annotated cells."""
        self._kg = kg
        masked = [
            ref for ref in dataset.annotated_cells() if not dataset.cell_text(ref)
        ]
        by_table: dict[str, list[CellRef]] = defaultdict(list)
        for ref in masked:
            by_table[ref.table_id].append(ref)

        predictions: dict[CellRef, str | None] = {}
        for table_id, refs in by_table.items():
            table = dataset.table(table_id)
            resolved = self._resolve_unmasked(table)
            patterns = self._discover_patterns(table, resolved)
            for ref in refs:
                predictions[ref] = self._impute(
                    kg, table, ref, resolved, patterns
                )
        return predictions

    # -- alignment ---------------------------------------------------------------

    def _resolve_unmasked(self, table: Table) -> dict[tuple[int, int], str]:
        """Resolve non-empty cells to entity ids via lookup (top-1)."""
        positions: list[tuple[int, int]] = []
        texts: list[str] = []
        for r in range(table.num_rows):
            for c in range(table.num_cols):
                text = table.cell(r, c)
                if text:
                    positions.append((r, c))
                    texts.append(text)
        resolved: dict[tuple[int, int], str] = {}
        if not texts:
            return resolved
        for position, candidates in zip(
            positions, self.lookup.lookup_batch(texts, self.candidate_k)
        ):
            if candidates:
                resolved[position] = candidates[0].entity_id
        return resolved

    def _discover_patterns(
        self, table: Table, resolved: dict[tuple[int, int], str]
    ) -> dict[int, tuple[str, str]]:
        """Property connecting column 0 to each context column.

        Returns ``col -> (property_id, direction)`` where direction "out"
        means subject -> context (fact subject is the column-0 entity).
        """
        votes: dict[int, Counter[tuple[str, str]]] = defaultdict(Counter)
        for r in range(table.num_rows):
            subject = resolved.get((r, 0))
            if subject is None:
                continue
            for c in range(1, table.num_cols):
                context = resolved.get((r, c))
                if context is None:
                    continue
                for fact in self._kg_facts_between(subject, context):
                    votes[c][fact] += 1
        return {
            c: counter.most_common(1)[0][0]
            for c, counter in votes.items()
            if counter
        }

    def _kg_facts_between(self, a: str, b: str) -> list[tuple[str, str]]:
        facts: list[tuple[str, str]] = []
        kg = self._kg
        for fact in kg.facts_about(a):
            if fact.object_id == b:
                facts.append((fact.property_id, "out"))
        for fact in kg.facts_about(b):
            if fact.object_id == a:
                facts.append((fact.property_id, "in"))
        return facts

    # -- imputation -----------------------------------------------------------------

    def _impute(
        self,
        kg: KnowledgeGraph,
        table: Table,
        ref: CellRef,
        resolved: dict[tuple[int, int], str],
        patterns: dict[int, tuple[str, str]],
    ) -> str | None:
        if ref.col == 0:
            return self._impute_subject(kg, table, ref, resolved, patterns)
        return self._impute_context(kg, table, ref, resolved, patterns)

    def _impute_context(
        self,
        kg: KnowledgeGraph,
        table: Table,
        ref: CellRef,
        resolved: dict[tuple[int, int], str],
        patterns: dict[int, tuple[str, str]],
    ) -> str | None:
        pattern = patterns.get(ref.col)
        subject = resolved.get((ref.row, 0))
        if pattern is None or subject is None:
            return None
        property_id, direction = pattern
        if direction == "out":
            for fact in kg.facts_about(subject):
                if fact.property_id == property_id and fact.object_id is not None:
                    return fact.object_id
        else:
            for fact in kg.facts_mentioning(subject):
                if fact.property_id == property_id:
                    return fact.subject_id
        return None

    def _impute_subject(
        self,
        kg: KnowledgeGraph,
        table: Table,
        ref: CellRef,
        resolved: dict[tuple[int, int], str],
        patterns: dict[int, tuple[str, str]],
    ) -> str | None:
        # Invert the strongest available context pattern.
        for c in range(1, table.num_cols):
            pattern = patterns.get(c)
            context = resolved.get((ref.row, c))
            if pattern is None or context is None:
                continue
            property_id, direction = pattern
            if direction == "out":
                # subject --property--> context; find subjects pointing at it.
                for fact in kg.facts_mentioning(context):
                    if fact.property_id == property_id:
                        return fact.subject_id
            else:
                for fact in kg.facts_about(context):
                    if fact.property_id == property_id and fact.object_id:
                        return fact.object_id
        return None
