"""Semantic-annotation application systems (paper Section IV).

Simplified but faithful reimplementations of the five systems whose lookup
component the paper replaces with EmbLookup:

- :class:`BbwAnnotator` — bbw (SemTab 2020): lexical match boosted by
  row-context relatedness.
- :class:`MantisTableAnnotator` — MantisTable: column-type-aware scoring.
- :class:`JenTabAnnotator` — JenTab: create/filter/select candidate
  pipeline with query reformulation.
- :class:`DoSeRDisambiguator` — DoSeR: collective entity disambiguation
  via PageRank over the candidate graph.
- :class:`KataraRepairer` — Katara: KG-pattern-based data repair.

Every system takes a pluggable :class:`repro.lookup.base.LookupService`;
the benchmark harness swaps the original service for EmbLookup and measures
the lookup-time fraction exactly as the paper does.
"""

from repro.annotation.base import CeaAnnotator, annotate_column_types
from repro.annotation.bbw import BbwAnnotator
from repro.annotation.mantistable import MantisTableAnnotator
from repro.annotation.jentab import JenTabAnnotator
from repro.annotation.doser import DoSeRDisambiguator
from repro.annotation.katara import KataraRepairer

__all__ = [
    "BbwAnnotator",
    "CeaAnnotator",
    "DoSeRDisambiguator",
    "JenTabAnnotator",
    "KataraRepairer",
    "MantisTableAnnotator",
    "annotate_column_types",
]
