"""DoSeR-style collective entity disambiguation.

DoSeR (Disambiguation of Semantic Resources) disambiguates a *list* of
mentions jointly: candidates form a graph whose edges connect candidates of
different mentions that are related in the KG; a personalised PageRank
seeded by lexical similarity ranks candidates, and each mention takes its
highest-ranked candidate.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import LookupService
from repro.text.distance import levenshtein_ratio
from repro.text.tokenize import normalize

__all__ = ["DoSeRDisambiguator"]


class DoSeRDisambiguator:
    """PageRank-based collective disambiguation over lookup candidates."""

    name = "doser"

    def __init__(
        self,
        lookup_service: LookupService,
        candidate_k: int = 20,
        damping: float = 0.85,
        type_filter: str | None = None,
    ):
        if candidate_k < 1:
            raise ValueError(f"candidate_k must be >= 1, got {candidate_k}")
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if type_filter is not None and not lookup_service.supports_type_filter:
            raise ValueError(
                f"{type(lookup_service).__name__} does not support "
                "type_filter"
            )
        self.lookup = lookup_service
        self.candidate_k = candidate_k
        self.damping = damping
        self.type_filter = type_filter

    def disambiguate(
        self, mentions: Sequence[str], kg: KnowledgeGraph
    ) -> list[str | None]:
        """Jointly resolve ``mentions``; returns one entity id (or None) each."""
        if not mentions:
            return []
        candidate_lists = self.lookup.lookup_batch(
            list(mentions), self.candidate_k, type_filter=self.type_filter
        )

        graph = nx.Graph()
        personalization: dict[tuple[int, str], float] = {}
        for m_idx, (mention, cands) in enumerate(zip(mentions, candidate_lists)):
            query = normalize(mention)
            for candidate in cands:
                node = (m_idx, candidate.entity_id)
                entity = kg.entity(candidate.entity_id)
                lexical = max(
                    levenshtein_ratio(query, normalize(m)) for m in entity.mentions
                )
                graph.add_node(node)
                personalization[node] = max(lexical, 1e-6)

        # Coherence edges: candidates of *different* mentions that are
        # directly related in the KG.  (The same entity recurring across
        # mentions is NOT coherence — linking those nodes would let any
        # frequent candidate form a self-reinforcing clique.)
        nodes = list(graph.nodes)
        neighbour_cache = {
            entity_id: kg.neighbors(entity_id)
            for entity_id in {eid for _, eid in nodes}
        }
        for i, (m_i, e_i) in enumerate(nodes):
            for m_j, e_j in nodes[i + 1 :]:
                if m_i == m_j:
                    continue
                if e_j in neighbour_cache[e_i]:
                    graph.add_edge((m_i, e_i), (m_j, e_j))

        if graph.number_of_nodes() == 0:
            return [None] * len(mentions)
        total = sum(personalization.values())
        norm_personalization = {n: v / total for n, v in personalization.items()}
        ranks = nx.pagerank(
            graph, alpha=self.damping, personalization=norm_personalization
        )

        # Final score blends the collective (PageRank) signal with the
        # lexical prior, normalising ranks per mention.
        results: list[str | None] = []
        for m_idx in range(len(mentions)):
            mention_nodes = [n for n in nodes if n[0] == m_idx]
            if not mention_nodes:
                results.append(None)
                continue
            max_rank = max(ranks[n] for n in mention_nodes) or 1.0
            best_entity: str | None = None
            best_score = -1.0
            for node in mention_nodes:
                score = personalization[node] + 0.5 * ranks[node] / max_rank
                if score > best_score:
                    best_score = score
                    best_entity = node[1]
            results.append(best_entity)
        return results
