"""bbw-style annotator: lexical matching boosted by row context.

bbw ("boosted by wiki", SemTab 2020) scores candidates by surface
similarity and boosts those that are connected in the KG to candidates of
the *other* cells in the same row — the contextual signal that lets it
disambiguate homonyms (``berlin`` the capital vs ``berlin`` the NH town,
depending on the neighbouring ``germany`` / ``united states`` cell).
"""

from __future__ import annotations

from collections import defaultdict

from repro.annotation.base import CeaAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate
from repro.tables.table import CellRef
from repro.text.distance import levenshtein_ratio
from repro.text.tokenize import normalize

__all__ = ["BbwAnnotator"]


class BbwAnnotator(CeaAnnotator):
    name = "bbw"

    def __init__(self, lookup_service, candidate_k: int = 20, context_weight: float = 0.35):
        super().__init__(lookup_service, candidate_k)
        if context_weight < 0:
            raise ValueError("context_weight must be >= 0")
        self.context_weight = context_weight

    def _disambiguate(
        self,
        kg: KnowledgeGraph,
        table_id: str,
        refs: list[CellRef],
        texts: list[str],
        candidates: list[list[Candidate]],
    ) -> dict[CellRef, str | None]:
        # Candidate entity sets per row (for the context boost).
        row_candidates: dict[int, set[str]] = defaultdict(set)
        for ref, cands in zip(refs, candidates):
            row_candidates[ref.row].update(c.entity_id for c in cands)

        predictions: dict[CellRef, str | None] = {}
        for ref, text, cands in zip(refs, texts, candidates):
            if not cands:
                predictions[ref] = None
                continue
            query = normalize(text)
            context = row_candidates[ref.row]
            best_id: str | None = None
            best_score = -float("inf")
            for candidate in cands:
                entity = kg.entity(candidate.entity_id)
                lexical = max(
                    levenshtein_ratio(query, normalize(m)) for m in entity.mentions
                )
                neighbours = kg.neighbors(candidate.entity_id)
                boost = 1.0 if neighbours & (context - {candidate.entity_id}) else 0.0
                score = lexical + self.context_weight * boost
                if score > best_score:
                    best_score = score
                    best_id = candidate.entity_id
            predictions[ref] = best_id
        return predictions
