"""Normalisation and tokenisation helpers for mentions and labels."""

from __future__ import annotations

import re
import unicodedata

__all__ = ["normalize", "word_tokens", "wordpieces"]

_WS_RE = re.compile(r"\s+")
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def normalize(text: str) -> str:
    """Canonicalise a mention: NFKD fold, lowercase, collapse whitespace.

    Diacritics are stripped (``Müller`` -> ``muller``) so that the character
    alphabet stays compact; this mirrors the preprocessing applied before
    one-hot encoding in the paper's public code.
    """
    decomposed = unicodedata.normalize("NFKD", text)
    ascii_text = decomposed.encode("ascii", "ignore").decode("ascii")
    return _WS_RE.sub(" ", ascii_text.lower()).strip()


def word_tokens(text: str) -> list[str]:
    """Alphanumeric word tokens of a normalised string."""
    return _TOKEN_RE.findall(normalize(text))


def wordpieces(token: str, vocabulary: set[str], max_piece: int = 8) -> list[str]:
    """Greedy longest-match-first wordpiece split of ``token``.

    Used by the BERT-style baseline embedder (Table VII).  Pieces after the
    first are prefixed with ``##`` following the WordPiece convention.  When
    no vocabulary piece matches, falls back to single characters.
    """
    pieces: list[str] = []
    start = 0
    while start < len(token):
        end = min(len(token), start + max_piece)
        matched = None
        while end > start:
            piece = token[start:end]
            key = piece if start == 0 else "##" + piece
            if key in vocabulary or len(piece) == 1:
                matched = key if key in vocabulary else piece if start == 0 else "##" + piece
                break
            end -= 1
        assert matched is not None
        pieces.append(matched)
        start = end
    return pieces
