"""Error injection implementing the paper's misspelling taxonomy.

Section IV-B injects noise into 10% of cells: "dropping/inserting one or
more letters, transposing letters, swapping the tokens, abbreviations, and
so on."  :class:`NoiseModel` implements each of those operators plus keyboard
-neighbour substitution, with a configurable mixture, and is used both for
training-time triplet perturbations and evaluation-time noisy datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["NoiseModel", "NoiseSpec", "abbreviate"]

#: QWERTY adjacency used for realistic substitution typos.
_KEYBOARD_NEIGHBOURS: dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol", "a": "qsz", "s": "adwx",
    "d": "sfec", "f": "dgrv", "g": "fhtb", "h": "gjyn", "j": "hkum",
    "k": "jli", "l": "ko", "z": "xa", "x": "zcs", "c": "xvd", "v": "cbf",
    "b": "vng", "n": "bmh", "m": "nj",
}


def abbreviate(text: str) -> str:
    """Initialism of a multi-word mention (``european union`` -> ``eu``).

    Single-word mentions are truncated to a 3-letter prefix instead, which
    matches how the paper's abbreviation noise behaves on one-token cells.
    """
    words = text.split()
    if len(words) >= 2:
        return "".join(w[0] for w in words if w)
    return text[:3]


@dataclass(frozen=True)
class NoiseSpec:
    """Mixture weights over the error operators.

    Weights need not sum to one; they are normalised when sampling.
    """

    drop_char: float = 0.25
    insert_char: float = 0.2
    transpose: float = 0.2
    substitute: float = 0.15
    swap_tokens: float = 0.1
    abbreviation: float = 0.1

    def operators(self) -> list[tuple[str, float]]:
        """(name, weight) pairs; validates the weights."""
        pairs = [
            ("drop_char", self.drop_char),
            ("insert_char", self.insert_char),
            ("transpose", self.transpose),
            ("substitute", self.substitute),
            ("swap_tokens", self.swap_tokens),
            ("abbreviation", self.abbreviation),
        ]
        if any(w < 0 for _, w in pairs):
            raise ValueError("noise weights must be non-negative")
        if not any(w > 0 for _, w in pairs):
            raise ValueError("at least one noise weight must be positive")
        return pairs


class NoiseModel:
    """Samples corrupted variants of a mention.

    Parameters
    ----------
    spec:
        Mixture of error operators.
    max_edits:
        Upper bound on how many character-level operators are applied to a
        single mention ("dropping ... one or more letters").
    seed:
        Seed (or generator) for reproducible corruption.
    """

    def __init__(
        self,
        spec: NoiseSpec | None = None,
        max_edits: int = 2,
        seed: int | np.random.Generator | None = None,
    ):
        if max_edits < 1:
            raise ValueError(f"max_edits must be >= 1, got {max_edits}")
        self.spec = spec or NoiseSpec()
        self.max_edits = max_edits
        self.rng = as_rng(seed)
        names, weights = zip(*self.spec.operators())
        total = float(sum(weights))
        self._names = list(names)
        self._probs = [w / total for w in weights]

    # -- individual operators -------------------------------------------------

    def _drop_char(self, text: str) -> str:
        if len(text) <= 1:
            return text
        pos = int(self.rng.integers(0, len(text)))
        return text[:pos] + text[pos + 1 :]

    def _insert_char(self, text: str) -> str:
        pos = int(self.rng.integers(0, len(text) + 1))
        ch = chr(int(self.rng.integers(ord("a"), ord("z") + 1)))
        return text[:pos] + ch + text[pos:]

    def _transpose(self, text: str) -> str:
        if len(text) < 2:
            return text
        pos = int(self.rng.integers(0, len(text) - 1))
        return text[:pos] + text[pos + 1] + text[pos] + text[pos + 2 :]

    def _substitute(self, text: str) -> str:
        if not text:
            return text
        pos = int(self.rng.integers(0, len(text)))
        original = text[pos]
        neighbours = _KEYBOARD_NEIGHBOURS.get(original)
        if neighbours:
            replacement = neighbours[int(self.rng.integers(0, len(neighbours)))]
        else:
            replacement = chr(int(self.rng.integers(ord("a"), ord("z") + 1)))
        return text[:pos] + replacement + text[pos + 1 :]

    def _swap_tokens(self, text: str) -> str:
        words = text.split()
        if len(words) < 2:
            return self._transpose(text)
        i = int(self.rng.integers(0, len(words) - 1))
        words[i], words[i + 1] = words[i + 1], words[i]
        return " ".join(words)

    def _abbreviation(self, text: str) -> str:
        return abbreviate(text)

    # -- public API ------------------------------------------------------------

    def corrupt(self, mention: str) -> str:
        """Return a corrupted variant of ``mention``.

        Abbreviation and token swap are applied at most once (they are
        structural rather than character edits); character operators may be
        applied up to ``max_edits`` times.
        """
        if not mention:
            return mention
        operator = self._sample_operator()
        if operator in ("abbreviation", "swap_tokens"):
            return getattr(self, f"_{operator}")(mention)
        edits = int(self.rng.integers(1, self.max_edits + 1))
        corrupted = mention
        for _ in range(edits):
            corrupted = getattr(self, f"_{operator}")(corrupted)
        return corrupted

    def corrupt_many(self, mention: str, count: int) -> list[str]:
        """Sample ``count`` independent corruptions of ``mention``."""
        return [self.corrupt(mention) for _ in range(count)]

    def _sample_operator(self) -> str:
        return self._names[int(self.rng.choice(len(self._names), p=self._probs))]

    def __repr__(self) -> str:
        return f"NoiseModel(max_edits={self.max_edits})"
