"""One-hot character encoding of entity mentions (paper Section III-B).

A mention is encoded as an ``|A| x L`` matrix whose ``i``-th column is the
one-hot vector of the mention's ``i``-th character; columns beyond the
mention length are zero.  This is the input representation of the syntactic
CNN tower.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.alphabet import DEFAULT_ALPHABET, Alphabet

__all__ = ["OneHotEncoder"]


class OneHotEncoder:
    """Encodes strings into fixed-width one-hot matrices.

    Parameters
    ----------
    alphabet:
        Character inventory.  Characters outside the alphabet map to the
        unknown row (row 0).
    max_length:
        ``L`` in the paper — the width of the encoding.  Longer mentions are
        truncated; shorter ones are zero-padded on the right.
    """

    def __init__(self, alphabet: Alphabet = DEFAULT_ALPHABET, max_length: int = 48):
        if max_length <= 0:
            raise ValueError(f"max_length must be positive, got {max_length}")
        self.alphabet = alphabet
        self.max_length = max_length

    @property
    def shape(self) -> tuple[int, int]:
        """Shape ``(|A|, L)`` of a single encoded mention."""
        return (self.alphabet.size, self.max_length)

    def encode(self, mention: str) -> np.ndarray:
        """Encode one mention into a float32 ``(|A|, L)`` matrix."""
        matrix = np.zeros(self.shape, dtype=np.float32)
        for col, ch in enumerate(mention[: self.max_length]):
            matrix[self.alphabet.position(ch), col] = 1.0
        return matrix

    def encode_batch(self, mentions: Sequence[str]) -> np.ndarray:
        """Encode mentions into a ``(batch, |A|, L)`` tensor."""
        batch = np.zeros((len(mentions), *self.shape), dtype=np.float32)
        rows = self.alphabet.position
        for b, mention in enumerate(mentions):
            for col, ch in enumerate(mention[: self.max_length]):
                batch[b, rows(ch), col] = 1.0
        return batch

    def decode(self, matrix: np.ndarray) -> str:
        """Best-effort inverse of :meth:`encode` (unknowns become ``\\0``).

        Decoding stops at the first all-zero (padding) column.
        """
        if matrix.shape != self.shape:
            raise ValueError(f"expected shape {self.shape}, got {matrix.shape}")
        chars: list[str] = []
        for col in range(self.max_length):
            column = matrix[:, col]
            if not column.any():
                break
            chars.append(self.alphabet.char_at(int(column.argmax())))
        return "".join(chars)

    def __repr__(self) -> str:
        return f"OneHotEncoder(alphabet_size={self.alphabet.size}, L={self.max_length})"
