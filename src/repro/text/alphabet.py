"""Alphabet abstraction for the character-level encoder.

The paper one-hot encodes entity mentions over a fixed alphabet ``A`` (the
character inventory of the KG labels).  We model that inventory explicitly:
the alphabet maps characters to contiguous positions, reserves slot 0 for
unknown characters, and can be *fit* from a corpus so that rarely-seen
characters fall back to the unknown slot rather than exploding the encoding
width.
"""

from __future__ import annotations

import string
from collections import Counter
from collections.abc import Iterable

__all__ = ["Alphabet", "DEFAULT_ALPHABET"]


class Alphabet:
    """An ordered character inventory with an explicit unknown slot.

    Position 0 is always the unknown character; real characters occupy
    positions ``1 .. len(chars)``.  ``size`` therefore equals
    ``len(chars) + 1``.
    """

    UNKNOWN = "\0"

    def __init__(self, chars: Iterable[str]):
        ordered: list[str] = []
        seen: set[str] = set()
        for ch in chars:
            if len(ch) != 1:
                raise ValueError(f"alphabet entries must be single chars, got {ch!r}")
            if ch == self.UNKNOWN:
                raise ValueError("the NUL character is reserved for unknowns")
            if ch not in seen:
                seen.add(ch)
                ordered.append(ch)
        if not ordered:
            raise ValueError("alphabet must contain at least one character")
        self._chars: tuple[str, ...] = tuple(ordered)
        self._pos: dict[str, int] = {ch: i + 1 for i, ch in enumerate(ordered)}

    @classmethod
    def fit(
        cls,
        corpus: Iterable[str],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Alphabet":
        """Build an alphabet from the characters appearing in ``corpus``.

        Characters rarer than ``min_count`` are dropped (they will encode to
        the unknown slot).  When ``max_size`` is given, only the most frequent
        characters are kept.
        """
        counts = Counter(ch for text in corpus for ch in text)
        frequent = [
            (ch, n) for ch, n in counts.items() if n >= min_count and ch != cls.UNKNOWN
        ]
        # Sort by frequency (desc) then codepoint for a stable inventory.
        frequent.sort(key=lambda item: (-item[1], item[0]))
        if max_size is not None:
            frequent = frequent[:max_size]
        if not frequent:
            raise ValueError("corpus produced an empty alphabet")
        return cls(sorted(ch for ch, _ in frequent))

    @property
    def chars(self) -> tuple[str, ...]:
        return self._chars

    @property
    def size(self) -> int:
        """Number of encoding rows, including the unknown slot."""
        return len(self._chars) + 1

    def position(self, ch: str) -> int:
        """Positional index of ``ch``; 0 when the character is unknown."""
        return self._pos.get(ch, 0)

    def char_at(self, position: int) -> str:
        """Inverse of :meth:`position`; position 0 maps to the unknown char."""
        if position == 0:
            return self.UNKNOWN
        return self._chars[position - 1]

    def __contains__(self, ch: str) -> bool:
        return ch in self._pos

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Alphabet) and self._chars == other._chars

    def __repr__(self) -> str:
        preview = "".join(self._chars[:16])
        suffix = "..." if len(self._chars) > 16 else ""
        return f"Alphabet({len(self._chars)} chars: {preview!r}{suffix})"


#: Lowercase ASCII letters, digits, space and common punctuation — enough for
#: the normalised KG labels the synthetic generator produces.
DEFAULT_ALPHABET = Alphabet(string.ascii_lowercase + string.digits + " .-'&,()/")
