"""Classical string distances used by the baseline lookup services.

These are the similarity metrics the paper's Table V baselines optimise for:
Levenshtein (FuzzyWuzzy, ElasticSearch fuzzy queries, the LSH variant),
q-grams, and exact match.  Implementations are pure Python with the usual
dynamic-programming optimisations (two-row tables, early exit on length
bounds) so they remain honest comparators for the benchmark harness.
"""

from __future__ import annotations

__all__ = [
    "damerau_levenshtein",
    "jaccard_qgram_similarity",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_ratio",
    "qgrams",
]


def levenshtein(a: str, b: str, max_distance: int | None = None) -> int:
    """Edit distance between ``a`` and ``b`` (insert/delete/substitute).

    When ``max_distance`` is given and the true distance exceeds it, any
    value strictly greater than ``max_distance`` may be returned — callers
    use this as a cheap cut-off for candidate filtering.
    """
    if a == b:
        return 0
    # Ensure a is the shorter string so the DP rows stay small.
    if len(a) > len(b):
        a, b = b, a
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1
    if not a:
        return len(b)

    previous = list(range(len(a) + 1))
    for i, cb in enumerate(b, start=1):
        current = [i] + [0] * len(a)
        row_min = i
        for j, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            row_min = min(row_min, current[j])
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def damerau_levenshtein(a: str, b: str) -> int:
    """Edit distance that also counts adjacent transposition as one edit.

    (Restricted Damerau-Levenshtein / optimal string alignment.)
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)

    d = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(len(a) + 1):
        d[i][0] = i
    for j in range(len(b) + 1):
        d[0][j] = j
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            d[i][j] = min(
                d[i - 1][j] + 1,
                d[i][j - 1] + 1,
                d[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                d[i][j] = min(d[i][j], d[i - 2][j - 2] + 1)
    return d[-1][-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalised Levenshtein similarity in [0, 1] (1.0 means identical).

    This is FuzzyWuzzy's ``ratio``-style score:
    ``1 - distance / max(len(a), len(b))``.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """Character q-grams of ``text``; padded with ``#`` sentinels by default.

    Padding gives boundary grams extra weight, which is how the ElasticSearch
    trigram analyser behaves.
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    padded = ("#" * (q - 1) + text + "#" * (q - 1)) if pad else text
    if len(padded) < q:
        return [padded] if padded else []
    return [padded[i : i + q] for i in range(len(padded) - q + 1)]


def jaccard_qgram_similarity(a: str, b: str, q: int = 3) -> float:
    """Jaccard similarity of the q-gram sets of ``a`` and ``b``."""
    grams_a = set(qgrams(a, q))
    grams_b = set(qgrams(b, q))
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    if not union:
        return 1.0
    return len(grams_a & grams_b) / len(union)


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity in [0, 1].

    Included because several SemTab systems (e.g. MantisTable's lexical
    matcher) rank candidates with Jaro-Winkler rather than raw edit distance.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0

    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)

    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if flagged:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    jaro = (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0

    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)
