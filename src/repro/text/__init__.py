"""String substrate: alphabets, encodings, distances, noise, tokenization.

This package implements the symbolic side of the lookup problem — everything
EmbLookup's continuous representation is measured against.  The distance
functions here (Levenshtein, q-gram, Jaccard, BM25 scoring in
:mod:`repro.lookup.elastic`) are the similarity metrics the paper's baseline
services optimise for, and the noise injector reproduces the paper's error
taxonomy (Section IV-B).
"""

from repro.text.alphabet import Alphabet, DEFAULT_ALPHABET
from repro.text.distance import (
    damerau_levenshtein,
    jaccard_qgram_similarity,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    qgrams,
)
from repro.text.encoding import OneHotEncoder
from repro.text.noise import NoiseModel, NoiseSpec, abbreviate
from repro.text.tokenize import normalize, word_tokens, wordpieces

__all__ = [
    "Alphabet",
    "DEFAULT_ALPHABET",
    "NoiseModel",
    "NoiseSpec",
    "OneHotEncoder",
    "abbreviate",
    "damerau_levenshtein",
    "jaccard_qgram_similarity",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_ratio",
    "normalize",
    "qgrams",
    "word_tokens",
    "wordpieces",
]
