"""Head-to-head comparison of lookup services under noise (Table V style).

Builds every baseline service plus EmbLookup over the same KG, fires the
same clean and corrupted query workloads at each, and prints success@10
and per-query time.

Run:  python examples/lookup_services_comparison.py
"""

from repro import EmbLookupConfig, SyntheticKGConfig, generate_kg
from repro.evaluation import candidate_recall_at_k, format_table
from repro.lookup import (
    ElasticLookup,
    EmbLookupService,
    ExactMatchLookup,
    FuzzyWuzzyLookup,
    LevenshteinLookup,
    LSHStringLookup,
    QGramLookup,
    RemoteServiceModel,
    SimulatedRemoteLookup,
)
from repro.text.noise import NoiseModel

K = 10


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(num_entities=800, seed=7))
    entities = list(kg.entities())[:250]
    truth = [e.entity_id for e in entities]
    clean = [e.label for e in entities]
    noisy = [NoiseModel(seed=3).corrupt(q) for q in clean]

    print("training EmbLookup...")
    services = [
        EmbLookupService.build(
            kg,
            EmbLookupConfig(
                epochs=6, triplets_per_entity=12, fasttext_epochs=2, seed=1
            ),
        ),
        ExactMatchLookup.build(kg),
        LevenshteinLookup.build(kg),
        FuzzyWuzzyLookup.build(kg),
        QGramLookup.build(kg),
        ElasticLookup.build(kg),
        LSHStringLookup.build(kg),
        SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.wikidata(), name="wikidata_api"
        ),
        SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.searx(), name="searx"
        ),
    ]

    rows = []
    for service in services:
        service.reset_timers()
        clean_rows = service.lookup_batch(clean, K)
        noisy_rows = service.lookup_batch(noisy, K)
        seconds = service.total_lookup_seconds
        clean_hit = candidate_recall_at_k(
            [[c.entity_id for c in row] for row in clean_rows], truth, K
        )
        noisy_hit = candidate_recall_at_k(
            [[c.entity_id for c in row] for row in noisy_rows], truth, K
        )
        rows.append(
            [
                service.name,
                clean_hit,
                noisy_hit,
                f"{seconds / (2 * len(clean)) * 1e3:.2f}ms",
            ]
        )
    print()
    print(
        format_table(
            ["service", "success@10 clean", "success@10 noisy", "time/query"],
            rows,
            title="Lookup services on the same workload (lower time is better)",
        )
    )
    print("\n(remote services account modelled network latency; see "
          "repro.lookup.remote)")


if __name__ == "__main__":
    main()
