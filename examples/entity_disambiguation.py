"""Entity disambiguation with DoSeR on EmbLookup candidates.

Shows the collective signal: the ambiguous mention "berlin" resolves to
the German capital when it appears next to "germany", and to the
US homonym when next to "united states" — using the same lookup service.

Run:  python examples/entity_disambiguation.py
"""

from repro import EmbLookupConfig, SyntheticKGConfig, generate_kg
from repro.annotation import DoSeRDisambiguator
from repro.lookup import EmbLookupService


def describe(kg, entity_id):
    if entity_id is None:
        return "(unresolved)"
    entity = kg.entity(entity_id)
    types = ",".join(entity.type_ids)
    return f"{entity.entity_id} {entity.label!r} [{types}]"


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(num_entities=600, seed=7))
    print("training EmbLookup...")
    lookup = EmbLookupService.build(
        kg,
        EmbLookupConfig(epochs=6, triplets_per_entity=12, fasttext_epochs=2, seed=1),
    )
    doser = DoSeRDisambiguator(lookup, candidate_k=20)

    # Context flips the reading of the ambiguous mention.
    for context in (["berlin", "germany", "munich"],
                    ["berlin new hampshire", "united states", "chicago"]):
        resolved = doser.disambiguate(context, kg)
        print(f"\nmentions: {context}")
        for mention, entity_id in zip(context, resolved):
            print(f"  {mention:22s} -> {describe(kg, entity_id)}")

    # Misspelled mention lists still disambiguate (EmbLookup candidates
    # absorb the typos).
    noisy = ["germanny", "francee", "spainn"]
    resolved = doser.disambiguate(noisy, kg)
    print(f"\nnoisy mentions: {noisy}")
    for mention, entity_id in zip(noisy, resolved):
        print(f"  {mention:22s} -> {describe(kg, entity_id)}")


if __name__ == "__main__":
    main()
