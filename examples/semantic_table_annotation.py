"""Semantic table annotation: swap a SemTab system's lookup for EmbLookup.

Reproduces the paper's core experiment in miniature: run the bbw annotator
on a generated benchmark twice — once with its original (simulated SearX
remote) lookup and once with EmbLookup — and compare F-score and the time
spent inside the lookup calls.

Run:  python examples/semantic_table_annotation.py
"""

from repro import BenchmarkConfig, EmbLookupConfig, SyntheticKGConfig
from repro import generate_benchmark, generate_kg
from repro.annotation import BbwAnnotator, annotate_column_types
from repro.evaluation import cta_f_score, run_cea_system
from repro.lookup import EmbLookupService, RemoteServiceModel, SimulatedRemoteLookup


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(num_entities=800, seed=7))
    dataset = generate_benchmark(kg, BenchmarkConfig(num_tables=15, seed=11))
    print(f"dataset: {dataset.statistics()}")

    # The original lookup: a metasearch endpoint with realistic round-trip
    # latency and rate limits (accounted on a virtual clock, not slept).
    searx = SimulatedRemoteLookup.build(
        kg, RemoteServiceModel.searx(), name="searx"
    )
    original = run_cea_system(BbwAnnotator(searx), dataset, kg)
    print(
        f"CEA bbw + {original.lookup_name:10s} "
        f"F={original.f_score:.2f} lookup={original.lookup_seconds:.2f}s"
    )

    print("training EmbLookup...")
    emblookup = EmbLookupService.build(
        kg,
        EmbLookupConfig(epochs=6, triplets_per_entity=12, fasttext_epochs=2, seed=1),
    )
    replaced = run_cea_system(BbwAnnotator(emblookup), dataset, kg)
    print(
        f"CEA bbw + {replaced.lookup_name:10s} "
        f"F={replaced.f_score:.2f} lookup={replaced.lookup_seconds:.2f}s"
    )
    print(f"lookup speedup: {replaced.speedup_over(original):.0f}x")

    # Column-type annotation rides on the same CEA output.
    annotator = BbwAnnotator(emblookup)
    cea = annotator.annotate_cells(dataset, kg)
    cta = annotate_column_types(dataset, kg, cea)
    score = cta_f_score(cta, dataset.cta, kg=kg)
    print(f"CTA bbw + emblookup F={score.f_score:.2f}")

    # The error variant: corrupt 10 % of cells, re-run both.
    noisy = dataset.with_noise(fraction=0.1, seed=5)
    noisy_original = run_cea_system(BbwAnnotator(searx), noisy, kg)
    noisy_replaced = run_cea_system(BbwAnnotator(emblookup), noisy, kg)
    print(
        f"with 10% noisy cells: original F={noisy_original.f_score:.2f}, "
        f"emblookup F={noisy_replaced.f_score:.2f}"
    )


if __name__ == "__main__":
    main()
