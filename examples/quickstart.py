"""Quickstart: train EmbLookup on a synthetic knowledge graph and run
typo-tolerant, alias-aware entity lookups.

Run:  python examples/quickstart.py        (~1 minute on a laptop CPU)
"""

from repro import EmbLookup, EmbLookupConfig, SyntheticKGConfig, generate_kg


def main() -> None:
    # 1. A knowledge graph.  The generator grows a synthetic graph around a
    #    curated core of real entities with genuine aliases (Germany /
    #    Deutschland / FRG, European Union / EU, Bill Gates / William Gates).
    kg = generate_kg(SyntheticKGConfig(num_entities=800, seed=7))
    print(f"knowledge graph: {kg.summary()}")

    # 2. Train the lookup service: fastText pre-training, triplet mining,
    #    dual-tower training, and PQ indexing — all driven by one config.
    config = EmbLookupConfig(
        epochs=8,               # paper: 100 (GPU scale)
        triplets_per_entity=14, # paper: 100
        fasttext_epochs=3,
        seed=1,
    )
    service = EmbLookup(config)
    print("training EmbLookup (a minute or so on CPU)...")
    service.fit(kg)
    print(f"index: {service.index.ntotal} entities, "
          f"{service.index.memory_bytes() / 1024:.0f} KiB")

    # 3. Lookups.  Clean strings, misspellings, and aliases all resolve.
    for query in ["germany", "germoney", "deutschland", "bill gates",
                  "william gates", "berlni"]:
        results = service.lookup(query, k=5)
        labels = [kg.entity(r.entity_id).label for r in results]
        print(f"  lookup({query!r:28s}) -> {labels}")

    # 4. Bulk queries are batched end to end (the paper's headline use).
    queries = [e.label for e in list(kg.entities())[:200]]
    import time

    start = time.perf_counter()
    batched = service.lookup_batch(queries, k=10)
    elapsed = time.perf_counter() - start
    hits = sum(
        1
        for entity, row in zip(list(kg.entities())[:200], batched)
        if entity.entity_id in [r.entity_id for r in row]
    )
    print(f"bulk: {len(queries)} lookups in {elapsed * 1000:.0f} ms "
          f"({elapsed / len(queries) * 1e6:.0f} us/query), "
          f"recall@10 = {hits / len(queries):.2f}")


if __name__ == "__main__":
    main()
