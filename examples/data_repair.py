"""Data repair with Katara: impute missing cells from KG patterns.

A benchmark dataset has 10 % of its cells blanked; Katara aligns each
table's columns with KG relations using the surviving rows (resolving the
surviving cells through the lookup service), then walks the relations to
impute the blanks.

Run:  python examples/data_repair.py
"""

from repro import BenchmarkConfig, EmbLookupConfig, SyntheticKGConfig
from repro import generate_benchmark, generate_kg
from repro.annotation import KataraRepairer
from repro.lookup import EmbLookupService, LevenshteinLookup
from repro.utils.timing import Timer


def evaluate(repairer, masked, answers, dataset, kg, label):
    repairer.lookup.reset_timers()
    with Timer() as timer:
        predictions = repairer.repair(masked, kg)
    truth = {ref: dataset.cea[ref] for ref in answers}
    correct = sum(1 for ref, t in truth.items() if predictions.get(ref) == t)
    print(
        f"  {label:14s} recovered {correct}/{len(truth)} cells "
        f"({correct / len(truth):.0%}), lookup time "
        f"{repairer.lookup.total_lookup_seconds:.2f}s "
        f"(wall {timer.elapsed:.2f}s)"
    )


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(num_entities=800, seed=7))
    dataset = generate_benchmark(kg, BenchmarkConfig(num_tables=15, seed=11))
    masked, answers = dataset.with_masked_cells(fraction=0.1, seed=9)
    print(f"masked {len(answers)} of {len(dataset.cea)} annotated cells")

    # Original: an edit-distance scan (the optimized Levenshtein module the
    # paper's baseline systems rely on).
    evaluate(
        KataraRepairer(LevenshteinLookup.build(kg)),
        masked, answers, dataset, kg, "levenshtein",
    )

    print("training EmbLookup...")
    emblookup = EmbLookupService.build(
        kg,
        EmbLookupConfig(epochs=6, triplets_per_entity=12, fasttext_epochs=2, seed=1),
    )
    evaluate(
        KataraRepairer(emblookup), masked, answers, dataset, kg, "emblookup",
    )


if __name__ == "__main__":
    main()
