"""Future-work extension: bootstrap lookup embeddings from KG embeddings.

The paper's conclusion proposes bootstrapping the lookup embeddings from
KG embeddings "optimized for semantic similarity".  This example runs that
pipeline:

1. train TransE on the knowledge graph's facts,
2. distill the entity embeddings into a fastText string encoder
   (so arbitrary strings land near their entity's graph embedding),
3. use the distilled encoder as EmbLookup's semantic tower.

Run:  python examples/kg_embedding_bootstrap.py
"""

from repro import SyntheticKGConfig, generate_kg
from repro.embedding.fasttext import FastTextConfig, FastTextModel
from repro.embedding.transe import TransEConfig, TransEModel, distill_into_fasttext


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(num_entities=500, seed=7))
    print(f"knowledge graph: {kg.summary()}")

    print("training TransE on the fact graph...")
    transe = TransEModel(TransEConfig(dim=32, epochs=20, seed=0)).fit(kg)

    # Sanity: true facts score above corrupted ones.
    facts = [f for f in kg.facts() if f.object_id is not None][:5]
    for fact in facts:
        score = transe.score_fact(fact.subject_id, fact.property_id, fact.object_id)
        subject = kg.entity(fact.subject_id).label
        obj = kg.entity(fact.object_id).label
        print(f"  <{subject} --{fact.property_id}--> {obj}>  score={score:.3f}")

    print("\ndistilling TransE into the fastText string encoder...")
    fasttext = FastTextModel(FastTextConfig(dim=32, epochs=0, seed=1))
    distill_into_fasttext(transe, fasttext, kg, epochs=5, seed=0)

    # The distilled encoder maps *strings* near their entity's graph
    # embedding — including aliases it never saw as index entries.
    germany = next(iter(kg.exact_lookup("germany")))
    target = transe.embedding_of(germany)
    for probe in ["germany", "deutschland", "frg", "france", "tokyo"]:
        vec = fasttext.embed([probe])[0]
        d = ((vec - target) ** 2).sum()
        print(f"  d(fasttext({probe!r:16s}), transe(germany)) = {d:.3f}")

    print(
        "\nThe distilled FastTextModel can seed EmbLookup's semantic tower "
        "(see repro.embedding.emblookup_model.EmbLookupModel)."
    )


if __name__ == "__main__":
    main()
