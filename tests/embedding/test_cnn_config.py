"""Configuration-corner tests for the CNN tower."""

import numpy as np
import pytest

from repro.embedding.cnn import CharCNNEncoder
from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder


class TestPoolingSchedules:
    def test_no_pooling(self):
        encoder = OneHotEncoder(Alphabet("abc"), max_length=8)
        cnn = CharCNNEncoder(encoder, out_dim=8, pool_every=0, rng=0)
        assert cnn._final_length == 8
        assert cnn.embed(["abc"]).shape == (1, 8)

    def test_pool_every_layer(self):
        encoder = OneHotEncoder(Alphabet("abc"), max_length=32)
        cnn = CharCNNEncoder(encoder, out_dim=8, pool_every=1, rng=0)
        # 5 layers, halving each time: 32 -> 1.
        assert cnn._final_length == 1
        assert cnn.embed(["abc"]).shape == (1, 8)

    def test_pooling_stops_at_length_one(self):
        """Short inputs must not pool below one position."""
        encoder = OneHotEncoder(Alphabet("abc"), max_length=2)
        cnn = CharCNNEncoder(encoder, out_dim=4, pool_every=1, rng=0)
        assert cnn._final_length >= 1
        assert np.isfinite(cnn.embed(["ab"])).all()

    def test_single_layer(self):
        encoder = OneHotEncoder(Alphabet("abc"), max_length=8)
        cnn = CharCNNEncoder(encoder, out_dim=8, num_layers=1, rng=0)
        assert len(cnn._convs) == 1
        assert cnn.embed(["cba"]).shape == (1, 8)


class TestChannelWidths:
    @pytest.mark.parametrize("channels", [1, 4, 16])
    def test_channel_variants(self, channels):
        encoder = OneHotEncoder(Alphabet("abc"), max_length=8)
        cnn = CharCNNEncoder(encoder, out_dim=8, channels=channels, rng=0)
        assert cnn.embed(["abc"]).shape == (1, 8)

    def test_parameter_count_scales_with_channels(self):
        encoder = OneHotEncoder(Alphabet("abc"), max_length=8)
        small = CharCNNEncoder(encoder, out_dim=8, channels=4, rng=0)
        large = CharCNNEncoder(encoder, out_dim=8, channels=16, rng=0)
        assert large.num_parameters() > small.num_parameters()
