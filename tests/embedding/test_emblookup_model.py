"""Tests for the dual-tower EmbLookup model."""

import numpy as np
import pytest

from repro.embedding.emblookup_model import EmbLookupModel
from repro.embedding.fasttext import FastTextConfig, FastTextModel
from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder

ENCODER = OneHotEncoder(Alphabet("abcdefghijklmnopqrstuvwxyz "), max_length=12)


def make_model(finetune=False, out_dim=16):
    fasttext = FastTextModel(FastTextConfig(dim=16, epochs=0, seed=0))
    fasttext.fit([["germany", "deutschland"]])
    return EmbLookupModel(
        ENCODER, fasttext, out_dim=out_dim, finetune_fasttext=finetune, rng=0
    )


class TestForward:
    def test_embed_shape(self):
        model = make_model()
        assert model.embed(["berlin", "paris"]).shape == (2, 16)

    def test_empty(self):
        assert make_model().embed([]).shape == (0, 16)

    def test_dim_property(self):
        assert make_model(out_dim=24).dim == 24

    def test_deterministic(self):
        np.testing.assert_array_equal(
            make_model().embed(["berlin"]), make_model().embed(["berlin"])
        )

    def test_forward_raises_on_tensor_call(self):
        with pytest.raises(TypeError):
            make_model()(None)


class TestParameterFreezing:
    def test_fasttext_frozen_by_default(self):
        model = make_model(finetune=False)
        names_trainable = {
            id(p) for p in model.parameters()
        }
        fasttext_params = {id(p) for _, p in model.fasttext.named_parameters()}
        assert not (names_trainable & fasttext_params)

    def test_fasttext_trainable_when_finetuning(self):
        model = make_model(finetune=True)
        trainable = {id(p) for p in model.parameters()}
        fasttext_params = {id(p) for _, p in model.fasttext.named_parameters()}
        assert fasttext_params <= trainable

    def test_state_dict_includes_both_towers(self):
        state = make_model().state_dict()
        assert any(name.startswith("cnn.") for name in state)
        assert any(name.startswith("fasttext.") for name in state)
        assert any(name.startswith("fuse1.") for name in state)

    def test_state_dict_roundtrip(self):
        a = make_model()
        b = make_model()
        # Perturb then restore.
        for param in b.fuse1.weight, b.fuse2.weight:
            param.data += 1.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(
            a.embed(["berlin"]), b.embed(["berlin"])
        )


class TestGradientFlow:
    def test_triplet_step_changes_output(self):
        from repro.nn.loss import triplet_margin_loss
        from repro.nn.optim import Adam

        model = make_model()
        before = model.embed(["berlin"]).copy()
        optimizer = Adam(list(model.parameters()), lr=1e-2)
        a = model.forward_mentions(["berlin"])
        p = model.forward_mentions(["berlni"])
        n = model.forward_mentions(["madrid"])
        loss = triplet_margin_loss(a, p, n, margin=5.0)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        after = model.embed(["berlin"])
        assert not np.allclose(before, after)
