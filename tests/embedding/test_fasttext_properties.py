"""Property-based tests for subword hashing (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.fasttext import subword_ngrams

words = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=12)


class TestSubwordProperties:
    @given(words)
    @settings(max_examples=100)
    def test_deterministic(self, word):
        assert subword_ngrams(word) == subword_ngrams(word)

    @given(words, st.integers(2, 10))
    @settings(max_examples=100)
    def test_bucket_bounds(self, word, log_buckets):
        buckets = 2**log_buckets
        ids = subword_ngrams(word, buckets=buckets)
        assert all(0 <= i < buckets for i in ids)

    @given(words)
    @settings(max_examples=100)
    def test_count_matches_ngram_arithmetic(self, word):
        """#ids = 1 whole-word + sum over n of (len+2 - n + 1) windows."""
        ids = subword_ngrams(word, min_n=3, max_n=5)
        wrapped_len = len(word) + 2
        expected = 1 + sum(
            max(wrapped_len - n + 1, 0) for n in (3, 4, 5) if wrapped_len >= n
        )
        assert len(ids) == expected

    @given(words, words)
    @settings(max_examples=100)
    def test_concatenation_is_union_of_word_ids(self, a, b):
        """Multi-word mentions hash each word independently."""
        combined = subword_ngrams(f"{a} {b}")
        assert combined == subword_ngrams(a) + subword_ngrams(b)

    @given(words)
    @settings(max_examples=60)
    def test_case_insensitive(self, word):
        assert subword_ngrams(word.upper()) == subword_ngrams(word)
