"""Tests for the fastText-style subword model."""

import numpy as np
import pytest

from repro.embedding.fasttext import FastTextConfig, FastTextModel, subword_ngrams


class TestSubwordNgrams:
    def test_includes_whole_word_and_ngrams(self):
        ids = subword_ngrams("berlin", min_n=3, max_n=3, buckets=1000)
        # <berlin> has 6 trigrams + 1 whole word = 7 ids.
        assert len(ids) == 7

    def test_stable_hashing(self):
        assert subword_ngrams("germany") == subword_ngrams("germany")

    def test_bucket_range(self):
        ids = subword_ngrams("knowledge graph", buckets=64)
        assert all(0 <= i < 64 for i in ids)

    def test_shared_ngrams_under_typo(self):
        """A one-letter typo must preserve most subword ids — the property
        that gives fastText partial typo robustness."""
        clean = set(subword_ngrams("germany"))
        typo = set(subword_ngrams("germany".replace("m", "n")))
        assert len(clean & typo) >= len(clean) // 3

    def test_empty_string(self):
        assert subword_ngrams("") == []

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            subword_ngrams("x", min_n=4, max_n=2)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            subword_ngrams("x", buckets=0)


class TestFastTextModel:
    def test_embed_shape(self):
        model = FastTextModel(FastTextConfig(dim=16, epochs=0))
        out = model.embed(["berlin", "paris"])
        assert out.shape == (2, 16)

    def test_empty_input(self):
        model = FastTextModel(FastTextConfig(dim=16))
        assert model.embed([]).shape == (0, 16)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FastTextConfig(dim=0)
        with pytest.raises(ValueError):
            FastTextConfig(negatives=0)

    def test_training_pulls_synonyms_together(self):
        """After fit, an entity's alias must be closer to its label than
        a random other label (the semantic tower's contract)."""
        groups = [
            ["germany", "deutschland"],
            ["france", "republique francaise"],
            ["spain", "espana"],
            ["japan", "nippon"],
            ["china", "zhongguo"],
            ["russia", "rossiya"],
        ]
        model = FastTextModel(FastTextConfig(dim=32, epochs=30, seed=0, lr=0.05))
        model.fit(groups)
        wins = 0
        for label, alias in groups:
            e_label = model.embed([label])[0]
            e_alias = model.embed([alias])[0]
            d_alias = ((e_label - e_alias) ** 2).sum()
            d_others = [
                ((e_label - model.embed([other])[0]) ** 2).sum()
                for other, _ in groups
                if other != label
            ]
            if d_alias < min(d_others):
                wins += 1
        assert wins >= 4

    def test_fit_marks_trained(self):
        model = FastTextModel(FastTextConfig(epochs=0))
        assert not model.is_trained
        model.fit([["a", "b"]])
        assert model.is_trained

    def test_handles_unseen_words(self):
        """Hashing keeps the model open-vocabulary: no crash, finite output."""
        model = FastTextModel(FastTextConfig(dim=8, epochs=1, seed=1))
        model.fit([["alpha", "beta"]])
        out = model.embed(["never seen before zzz"])
        assert np.isfinite(out).all()
