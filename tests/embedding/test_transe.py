"""Tests for the TransE extension (KG-embedding bootstrap, future work)."""

import numpy as np
import pytest

from repro.embedding.fasttext import FastTextConfig, FastTextModel
from repro.embedding.transe import TransEConfig, TransEModel, distill_into_fasttext


@pytest.fixture(scope="module")
def transe(tiny_kg):
    return TransEModel(TransEConfig(dim=16, epochs=15, seed=0)).fit(tiny_kg)


class TestTransE:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransEConfig(dim=0)
        with pytest.raises(ValueError):
            TransEConfig(margin=0)

    def test_untrained_access_raises(self):
        model = TransEModel()
        with pytest.raises(RuntimeError):
            model.embedding_of("Q1")

    def test_every_entity_embedded(self, transe, tiny_kg):
        for entity in tiny_kg.entities():
            vec = transe.embedding_of(entity.entity_id)
            assert vec.shape == (16,)
            assert np.isfinite(vec).all()

    def test_unknown_entity_raises(self, transe):
        with pytest.raises(KeyError):
            transe.embedding_of("Q999999")

    def test_true_facts_score_above_corrupted(self, transe, tiny_kg):
        """Core TransE property: real triples beat corrupted ones."""
        entity_ids = tiny_kg.entity_ids()
        rng = np.random.default_rng(1)
        wins = 0
        total = 0
        for fact in list(tiny_kg.facts())[:60]:
            if fact.object_id is None:
                continue
            true_score = transe.score_fact(
                fact.subject_id, fact.property_id, fact.object_id
            )
            corrupt = entity_ids[int(rng.integers(0, len(entity_ids)))]
            if corrupt == fact.object_id:
                continue
            fake_score = transe.score_fact(
                fact.subject_id, fact.property_id, corrupt
            )
            total += 1
            if true_score > fake_score:
                wins += 1
        assert total > 30
        assert wins / total > 0.7

    def test_related_entities_closer_than_random(self, transe, tiny_kg):
        """Neighbours in the KG should be nearer in embedding space."""
        rng = np.random.default_rng(2)
        entity_ids = tiny_kg.entity_ids()
        related_d, random_d = [], []
        for entity_id in entity_ids[:60]:
            neighbours = tiny_kg.neighbors(entity_id)
            if not neighbours:
                continue
            e = transe.embedding_of(entity_id)
            n = transe.embedding_of(next(iter(neighbours)))
            r = transe.embedding_of(
                entity_ids[int(rng.integers(0, len(entity_ids)))]
            )
            related_d.append(((e - n) ** 2).sum())
            random_d.append(((e - r) ** 2).sum())
        assert np.mean(related_d) < np.mean(random_d)


class TestDistillation:
    def test_dimension_mismatch_rejected(self, transe, tiny_kg):
        fasttext = FastTextModel(FastTextConfig(dim=32, epochs=0))
        with pytest.raises(ValueError):
            distill_into_fasttext(transe, fasttext, tiny_kg)

    def test_untrained_transe_rejected(self, tiny_kg):
        fasttext = FastTextModel(FastTextConfig(dim=16, epochs=0))
        with pytest.raises(RuntimeError):
            distill_into_fasttext(TransEModel(TransEConfig(dim=16)), fasttext, tiny_kg)

    def test_distillation_moves_strings_toward_kg_embeddings(self, transe, tiny_kg):
        fasttext = FastTextModel(FastTextConfig(dim=16, epochs=0, seed=3))
        def alignment():
            errs = []
            for entity in list(tiny_kg.entities())[:50]:
                predicted = fasttext.embed([entity.label])[0]
                target = transe.embedding_of(entity.entity_id)
                errs.append(((predicted - target) ** 2).sum())
            return float(np.mean(errs))
        before = alignment()
        distill_into_fasttext(transe, fasttext, tiny_kg, epochs=3, seed=0)
        after = alignment()
        assert after < before * 0.8

    def test_distilled_model_transfers_alias_similarity(self, transe, tiny_kg):
        """After distillation, an alias lands near its entity's embedding —
        the semantic bootstrap the paper's future work proposes."""
        fasttext = FastTextModel(FastTextConfig(dim=16, epochs=0, seed=3))
        distill_into_fasttext(transe, fasttext, tiny_kg, epochs=5, seed=0)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        target = transe.embedding_of(germany)
        alias_vec = fasttext.embed(["deutschland"])[0]
        random_vec = fasttext.embed(["stratovolcano dynamics"])[0]
        assert ((alias_vec - target) ** 2).sum() < ((random_vec - target) ** 2).sum()
