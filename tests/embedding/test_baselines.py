"""Tests for the Table VII baseline embedders: word2vec, wordpiece, LSTM."""

import numpy as np
import pytest

from repro.embedding.lstm import CharLSTMConfig, CharLSTMEmbedder
from repro.embedding.word2vec import Word2VecConfig, Word2VecModel
from repro.embedding.wordpiece import WordPieceConfig, WordPieceModel
from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder

GROUPS = [
    ["germany", "deutschland germany"],
    ["france", "france republic"],
    ["spain", "kingdom spain"],
    ["berlin", "berlin city"],
]


class TestWord2Vec:
    def test_embed_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Word2VecModel().embed(["x"])

    def test_embed_shape(self):
        model = Word2VecModel(Word2VecConfig(dim=16, epochs=1, seed=0))
        model.fit(GROUPS)
        assert model.embed(["germany", "france"]).shape == (2, 16)

    def test_oov_embeds_to_zero(self):
        """The documented failure mode: typos are OOV -> zero vector."""
        model = Word2VecModel(Word2VecConfig(dim=16, epochs=1, seed=0))
        model.fit(GROUPS)
        np.testing.assert_array_equal(
            model.embed(["germny"]), np.zeros((1, 16), dtype=np.float32)
        )

    def test_vocabulary_built_from_groups(self):
        model = Word2VecModel(Word2VecConfig(epochs=0, seed=0))
        model.fit(GROUPS)
        assert "germany" in model.vocabulary
        assert "deutschland" in model.vocabulary

    def test_cooccurring_words_align(self):
        model = Word2VecModel(Word2VecConfig(dim=16, epochs=20, seed=0))
        model.fit(GROUPS)
        def cos(a, b):
            va, vb = model.embed([a])[0], model.embed([b])[0]
            return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb) + 1e-9))
        assert cos("germany", "deutschland") > cos("germany", "spain")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Word2VecConfig(dim=0)


class TestWordPiece:
    def test_embed_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WordPieceModel().embed(["x"])

    def test_embed_shape(self):
        model = WordPieceModel(WordPieceConfig(dim=16, epochs=1, seed=0))
        model.fit(GROUPS)
        assert model.embed(["germany"]).shape == (1, 16)

    def test_single_chars_always_in_vocab(self):
        model = WordPieceModel(WordPieceConfig(epochs=0, seed=0))
        model.fit(GROUPS)
        for ch in "germany":
            assert ch in model.piece_vocabulary or f"##{ch}" in model.piece_vocabulary

    def test_typo_does_not_zero_out(self):
        """Unlike word2vec, shared pieces survive a typo (BERT-ish)."""
        model = WordPieceModel(WordPieceConfig(dim=16, epochs=2, seed=0))
        model.fit(GROUPS)
        out = model.embed(["germny"])
        assert np.abs(out).sum() > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WordPieceConfig(vocab_size=10)


class TestCharLSTM:
    ENCODER = OneHotEncoder(Alphabet("abcdefghijklmnopqrstuvwxyz "), max_length=12)

    def test_embed_shape(self):
        model = CharLSTMEmbedder(self.ENCODER, CharLSTMConfig(dim=8, hidden=8, seed=0))
        assert model.embed(["berlin", "x"]).shape == (2, 8)

    def test_empty_batch(self):
        model = CharLSTMEmbedder(self.ENCODER, CharLSTMConfig(dim=8, hidden=8))
        assert model.embed([]).shape == (0, 8)

    def test_different_strings_different_embeddings(self):
        model = CharLSTMEmbedder(self.ENCODER, CharLSTMConfig(dim=8, hidden=8, seed=0))
        out = model.embed(["berlin", "madrid"])
        assert not np.allclose(out[0], out[1])

    def test_fit_reduces_triplet_violations(self):
        triplets = [
            ("berlin", "berlni", "madrid"),
            ("madrid", "madrdi", "berlin"),
            ("paris", "pariss", "london"),
            ("london", "londn", "paris"),
        ] * 4
        model = CharLSTMEmbedder(
            self.ENCODER,
            CharLSTMConfig(dim=8, hidden=12, epochs=8, batch_size=8, seed=0),
        )
        def violations():
            count = 0
            for a, p, n in triplets[:4]:
                ea, ep, en = model.embed([a, p, n])
                if ((ea - ep) ** 2).sum() >= ((ea - en) ** 2).sum():
                    count += 1
            return count
        before = violations()
        model.fit(triplets)
        assert violations() <= before

    def test_fit_empty_is_noop(self):
        model = CharLSTMEmbedder(self.ENCODER, CharLSTMConfig(dim=8, hidden=8))
        assert model.fit([]) is model

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CharLSTMConfig(dim=0)
