"""Tests for the character-CNN tower."""

import numpy as np
import pytest

from repro.embedding.cnn import CharCNNEncoder
from repro.nn.loss import triplet_margin_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder

ENCODER = OneHotEncoder(Alphabet("abcdefghijklmnopqrstuvwxyz "), max_length=16)


class TestArchitecture:
    def test_output_shape(self):
        cnn = CharCNNEncoder(ENCODER, out_dim=32, rng=0)
        out = cnn.embed(["berlin", "paris", "x"])
        assert out.shape == (3, 32)

    def test_paper_defaults(self):
        """5 conv layers x 8 kernels of size 3 (Section III-B)."""
        cnn = CharCNNEncoder(ENCODER, rng=0)
        assert cnn.num_layers == 5
        assert cnn.channels == 8
        assert all(conv.kernel_size == 3 for conv in cnn._convs)

    def test_empty_batch(self):
        cnn = CharCNNEncoder(ENCODER, out_dim=16, rng=0)
        assert cnn.embed([]).shape == (0, 16)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            CharCNNEncoder(ENCODER, num_layers=0)

    def test_deterministic_given_seed(self):
        a = CharCNNEncoder(ENCODER, rng=3).embed(["berlin"])
        b = CharCNNEncoder(ENCODER, rng=3).embed(["berlin"])
        np.testing.assert_array_equal(a, b)

    def test_embed_dtype(self):
        assert CharCNNEncoder(ENCODER, rng=0).embed(["a"]).dtype == np.float32


class TestSyntacticInductiveBias:
    def test_trains_to_separate_typos_from_strangers(self):
        """A few steps of triplet training must order a typo closer to its
        source than an unrelated word — the CNN's raison d'etre."""
        rng = np.random.default_rng(0)
        cnn = CharCNNEncoder(ENCODER, out_dim=16, rng=rng)
        words = ["berlin", "paris", "london", "madrid", "vienna", "warsaw"]
        typos = {"berlin": "berlni", "paris": "pariss", "london": "lndon",
                 "madrid": "madird", "vienna": "vienaa", "warsaw": "warsw"}
        optimizer = Adam(list(cnn.parameters()), lr=3e-3)
        for _ in range(60):
            anchors, positives, negatives = [], [], []
            for word in words:
                anchors.append(word)
                positives.append(typos[word])
                negatives.append(words[int(rng.integers(0, len(words)))])
            a = cnn(Tensor(ENCODER.encode_batch(anchors)))
            p = cnn(Tensor(ENCODER.encode_batch(positives)))
            n = cnn(Tensor(ENCODER.encode_batch(negatives)))
            loss = triplet_margin_loss(a, p, n, margin=1.0)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        emb = {w: cnn.embed([w])[0] for w in words}
        typo_emb = {w: cnn.embed([typos[w]])[0] for w in words}
        wins = 0
        for word in words:
            d_typo = ((emb[word] - typo_emb[word]) ** 2).sum()
            others = [
                ((emb[word] - emb[o]) ** 2).sum() for o in words if o != word
            ]
            if d_typo < min(others):
                wins += 1
        assert wins >= 4
