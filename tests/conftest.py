"""Shared fixtures.

Expensive artefacts (generated KGs, the trained EmbLookup pipeline) are
session-scoped: built once, shared read-only by every test that needs them.

When ``REPRO_SANITIZER=1`` the runtime lock-order sanitizer
(:mod:`repro.testing.sanitizer`) is installed for the whole session:
every ``threading.Lock`` created in repro or test code is tracked, each
test fails if it introduced a lock-order inversion, and teardown checks
that no shared-memory segment created by this process is still
registered.

When ``REPRO_ARRAYCHECK=1`` the runtime array-contract validator
(:mod:`repro.utils.contracts`) is installed the same way: every
``@array_contract``-decorated call validates its arrays' shape, dtype,
and contiguity against the declared contract, and each test fails if it
recorded a new REP80x violation.
"""

from __future__ import annotations

import os

import pytest

from repro.core import EmbLookup, EmbLookupConfig
from repro.kg import KnowledgeGraph, SyntheticKGConfig, generate_kg
from repro.tables import BenchmarkConfig, TabularDataset, generate_benchmark

SANITIZE = os.environ.get("REPRO_SANITIZER") == "1"
ARRAYCHECK = os.environ.get("REPRO_ARRAYCHECK") == "1"

if SANITIZE:
    from repro.testing import sanitizer as _sanitizer

    _sanitizer.install()

if ARRAYCHECK:
    from repro.utils import contracts as _contracts

    _contracts.install()


@pytest.fixture(autouse=SANITIZE)
def _lock_order_sanitizer():
    """Fail any test that introduced a new lock-order inversion."""
    if not SANITIZE:
        yield
        return
    tracker = _sanitizer.current_tracker()
    before = len(tracker.violations())
    yield
    after = tracker.violations()
    new = after[before:]
    assert not new, (
        f"{len(new)} lock-order violation(s) introduced by this test:\n"
        + "\n".join(f"  - {message}" for message in new)
    )


@pytest.fixture(autouse=ARRAYCHECK)
def _array_contract_validator():
    """Fail any test that recorded a new array-contract violation."""
    if not ARRAYCHECK:
        yield
        return
    tracker = _contracts.current_tracker()
    before = len(tracker.violations())
    yield
    after = tracker.violations()
    new = after[before:]
    assert not new, (
        f"{len(new)} array-contract violation(s) recorded by this test:\n"
        + "\n".join(f"  - {message}" for message in new)
    )


def pytest_sessionfinish(session, exitstatus):
    """Under the sanitizer, leaked shm segments fail the run at teardown."""
    if not SANITIZE:
        return
    from repro.index.shm import owned_segment_names

    leaked = owned_segment_names()
    if leaked:
        session.exitstatus = 1
        raise pytest.UsageError(
            f"shared-memory segments still registered at session teardown: "
            f"{sorted(leaked)}"
        )


@pytest.fixture(scope="session")
def tiny_kg() -> KnowledgeGraph:
    """~160 entities: the curated seed core only (no synthesis beyond it)."""
    return generate_kg(SyntheticKGConfig(num_entities=160, seed=5))


@pytest.fixture(scope="session")
def small_kg() -> KnowledgeGraph:
    """400 entities: seed core + synthetic growth."""
    return generate_kg(SyntheticKGConfig(num_entities=400, seed=3))


@pytest.fixture(scope="session")
def small_dataset(small_kg) -> TabularDataset:
    """12-table benchmark over ``small_kg``."""
    return generate_benchmark(small_kg, BenchmarkConfig(num_tables=12, seed=11))


@pytest.fixture(scope="session")
def fast_config() -> EmbLookupConfig:
    """A training configuration small enough for the test suite."""
    return EmbLookupConfig(
        epochs=4,
        triplets_per_entity=10,
        fasttext_epochs=6,
        batch_size=64,
        seed=2,
    )


@pytest.fixture(scope="session")
def trained_service(tiny_kg, fast_config) -> EmbLookup:
    """A (quickly) trained EmbLookup pipeline over the tiny KG."""
    service = EmbLookup(fast_config)
    service.fit(tiny_kg)
    return service
