"""Shared fixtures.

Expensive artefacts (generated KGs, the trained EmbLookup pipeline) are
session-scoped: built once, shared read-only by every test that needs them.
"""

from __future__ import annotations

import pytest

from repro.core import EmbLookup, EmbLookupConfig
from repro.kg import KnowledgeGraph, SyntheticKGConfig, generate_kg
from repro.tables import BenchmarkConfig, TabularDataset, generate_benchmark


@pytest.fixture(scope="session")
def tiny_kg() -> KnowledgeGraph:
    """~160 entities: the curated seed core only (no synthesis beyond it)."""
    return generate_kg(SyntheticKGConfig(num_entities=160, seed=5))


@pytest.fixture(scope="session")
def small_kg() -> KnowledgeGraph:
    """400 entities: seed core + synthetic growth."""
    return generate_kg(SyntheticKGConfig(num_entities=400, seed=3))


@pytest.fixture(scope="session")
def small_dataset(small_kg) -> TabularDataset:
    """12-table benchmark over ``small_kg``."""
    return generate_benchmark(small_kg, BenchmarkConfig(num_tables=12, seed=11))


@pytest.fixture(scope="session")
def fast_config() -> EmbLookupConfig:
    """A training configuration small enough for the test suite."""
    return EmbLookupConfig(
        epochs=4,
        triplets_per_entity=10,
        fasttext_epochs=6,
        batch_size=64,
        seed=2,
    )


@pytest.fixture(scope="session")
def trained_service(tiny_kg, fast_config) -> EmbLookup:
    """A (quickly) trained EmbLookup pipeline over the tiny KG."""
    service = EmbLookup(fast_config)
    service.fit(tiny_kg)
    return service
