"""Tests for repro.tables.dataset (TabularDataset and its transforms)."""

import pytest

from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table


@pytest.fixture
def dataset() -> TabularDataset:
    tables = [
        Table("t1", ["country", "capital"],
              [["germany", "berlin"], ["france", "paris"]]),
        Table("t2", ["person"], [["bill gates"], ["alan turing"]]),
    ]
    cea = {
        CellRef("t1", 0, 0): "Q1",
        CellRef("t1", 0, 1): "Q2",
        CellRef("t1", 1, 0): "Q3",
        CellRef("t1", 1, 1): "Q4",
        CellRef("t2", 0, 0): "Q5",
        CellRef("t2", 1, 0): "Q6",
    }
    cta = {("t1", 0): "country", ("t1", 1): "capital", ("t2", 0): "person"}
    return TabularDataset("demo", tables, cea, cta)


class TestValidation:
    def test_duplicate_table_ids_rejected(self):
        tables = [Table("t", ["a"]), Table("t", ["a"])]
        with pytest.raises(ValueError):
            TabularDataset("x", tables)

    def test_cea_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            TabularDataset(
                "x", [Table("t", ["a"], [["v"]])], {CellRef("nope", 0, 0): "Q1"}
            )

    def test_cea_out_of_bounds_rejected(self):
        with pytest.raises(IndexError):
            TabularDataset(
                "x", [Table("t", ["a"], [["v"]])], {CellRef("t", 5, 0): "Q1"}
            )


class TestAccess:
    def test_table_by_id(self, dataset):
        assert dataset.table("t1").num_rows == 2

    def test_unknown_table(self, dataset):
        with pytest.raises(KeyError):
            dataset.table("zzz")

    def test_cell_text(self, dataset):
        assert dataset.cell_text(CellRef("t1", 0, 1)) == "berlin"

    def test_annotated_cells_sorted(self, dataset):
        cells = dataset.annotated_cells()
        assert cells == sorted(cells, key=lambda r: (r.table_id, r.row, r.col))
        assert len(cells) == 6

    def test_statistics(self, dataset):
        stats = dataset.statistics()
        assert stats.num_tables == 2
        assert stats.cells_to_annotate == 6
        assert stats.avg_rows == 2.0
        assert stats.avg_cols == 1.5


class TestNoiseTransform:
    def test_fraction_of_cells_corrupted(self, dataset):
        noisy = dataset.with_noise(fraction=0.5, seed=0)
        changed = sum(
            1
            for ref in dataset.annotated_cells()
            if dataset.cell_text(ref) != noisy.cell_text(ref)
        )
        assert changed == 3

    def test_ground_truth_unchanged(self, dataset):
        noisy = dataset.with_noise(0.5, seed=0)
        assert noisy.cea == dataset.cea
        assert noisy.cta == dataset.cta

    def test_original_untouched(self, dataset):
        before = dataset.cell_text(CellRef("t1", 0, 0))
        dataset.with_noise(1.0, seed=0)
        assert dataset.cell_text(CellRef("t1", 0, 0)) == before

    def test_zero_fraction_is_identity(self, dataset):
        noisy = dataset.with_noise(0.0, seed=0)
        for ref in dataset.annotated_cells():
            assert noisy.cell_text(ref) == dataset.cell_text(ref)

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.with_noise(1.5)

    def test_name_suffix(self, dataset):
        assert dataset.with_noise(0.1).name == "demo_errors"

    def test_deterministic(self, dataset):
        a = dataset.with_noise(0.5, seed=3)
        b = dataset.with_noise(0.5, seed=3)
        for ref in dataset.annotated_cells():
            assert a.cell_text(ref) == b.cell_text(ref)


class TestAliasTransform:
    def test_cells_replaced_by_aliases(self, dataset, tiny_kg):
        """Uses the real KG: germany -> one of its aliases."""
        germany_id = next(iter(tiny_kg.exact_lookup("germany")))
        tables = [Table("t", ["c"], [["germany"]])]
        ds = TabularDataset("x", tables, {CellRef("t", 0, 0): germany_id})
        swapped = ds.with_alias_substitution(tiny_kg, seed=1)
        new_text = swapped.cell_text(CellRef("t", 0, 0))
        assert new_text in tiny_kg.entity(germany_id).aliases

    def test_aliasless_entities_unchanged(self, tiny_kg):
        # Find an entity with no aliases.
        target = next(e for e in tiny_kg.entities() if not e.aliases)
        tables = [Table("t", ["c"], [[target.label]])]
        ds = TabularDataset("x", tables, {CellRef("t", 0, 0): target.entity_id})
        swapped = ds.with_alias_substitution(tiny_kg, seed=1)
        assert swapped.cell_text(CellRef("t", 0, 0)) == target.label


class TestMaskTransform:
    def test_masked_cells_blanked(self, dataset):
        masked, answers = dataset.with_masked_cells(0.5, seed=0)
        assert len(answers) == 3
        for ref, original in answers.items():
            assert masked.cell_text(ref) == ""
            assert dataset.cell_text(ref) == original

    def test_answers_align_with_truth(self, dataset):
        masked, answers = dataset.with_masked_cells(0.5, seed=0)
        for ref in answers:
            assert ref in dataset.cea
