"""Tests for the SemTab-style CSV dataset layout."""

import pytest

from repro.tables.io import load_dataset_csv, save_dataset_csv


class TestRoundtrip:
    def test_tables_preserved(self, tmp_path, small_dataset):
        save_dataset_csv(small_dataset, tmp_path / "ds")
        loaded = load_dataset_csv(tmp_path / "ds")
        assert len(loaded.tables) == len(small_dataset.tables)
        original = {t.table_id: t for t in small_dataset.tables}
        for table in loaded.tables:
            assert table.header == original[table.table_id].header
            assert table.rows == original[table.table_id].rows

    def test_ground_truth_preserved(self, tmp_path, small_dataset):
        save_dataset_csv(small_dataset, tmp_path / "ds")
        loaded = load_dataset_csv(tmp_path / "ds")
        assert loaded.cea == small_dataset.cea
        assert loaded.cta == small_dataset.cta

    def test_name_preserved(self, tmp_path, small_dataset):
        save_dataset_csv(small_dataset, tmp_path / "ds")
        loaded = load_dataset_csv(tmp_path / "ds")
        assert loaded.name == small_dataset.name

    def test_layout_is_semtab_style(self, tmp_path, small_dataset):
        save_dataset_csv(small_dataset, tmp_path / "ds")
        root = tmp_path / "ds"
        assert (root / "tables").is_dir()
        assert (root / "cea.csv").exists()
        assert (root / "cta.csv").exists()
        assert list((root / "tables").glob("*.csv"))

    def test_cells_with_commas_survive(self, tmp_path):
        from repro.tables.dataset import TabularDataset
        from repro.tables.table import CellRef, Table

        table = Table("t", ["name"], [["gates, bill"], ['say "hi"']])
        ds = TabularDataset("quoting", [table], {CellRef("t", 0, 0): "Q1"})
        save_dataset_csv(ds, tmp_path / "ds")
        loaded = load_dataset_csv(tmp_path / "ds")
        assert loaded.tables[0].rows == [["gates, bill"], ['say "hi"']]


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_csv(tmp_path / "absent")

    def test_empty_table_file_rejected(self, tmp_path):
        (tmp_path / "ds" / "tables").mkdir(parents=True)
        (tmp_path / "ds" / "tables" / "bad.csv").write_text("")
        with pytest.raises(ValueError):
            load_dataset_csv(tmp_path / "ds")
