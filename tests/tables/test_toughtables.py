"""Tests for the Tough-Tables-style generator."""

from repro.tables.toughtables import generate_tough_tables


class TestToughTables:
    def test_name(self, small_kg):
        assert generate_tough_tables(small_kg, num_tables=4).name == "tough_tables"

    def test_larger_tables_than_default(self, small_kg):
        ds = generate_tough_tables(small_kg, num_tables=4, min_rows=20, max_rows=30)
        assert all(t.num_rows >= 20 for t in ds.tables)

    def test_substantial_noise(self, small_kg):
        ds = generate_tough_tables(small_kg, num_tables=4, seed=1)
        mismatches = 0
        for ref in ds.annotated_cells():
            entity = small_kg.entity(ds.cea[ref])
            if ds.cell_text(ref) != entity.label:
                mismatches += 1
        assert mismatches / len(ds.annotated_cells()) > 0.3

    def test_ground_truth_complete(self, small_kg):
        ds = generate_tough_tables(small_kg, num_tables=4)
        assert len(ds.cea) > 0
        assert len(ds.cta) > 0

    def test_deterministic(self, small_kg):
        a = generate_tough_tables(small_kg, num_tables=3, seed=9)
        b = generate_tough_tables(small_kg, num_tables=3, seed=9)
        assert [t.rows for t in a.tables] == [t.rows for t in b.tables]
