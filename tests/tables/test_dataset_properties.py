"""Property-based tests of dataset transforms (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table


@st.composite
def small_dataset_strategy(draw):
    num_rows = draw(st.integers(1, 6))
    num_cols = draw(st.integers(1, 3))
    rows = [
        [
            draw(st.text(alphabet="abcdef ", min_size=1, max_size=8)).strip() or "x"
            for _ in range(num_cols)
        ]
        for _ in range(num_rows)
    ]
    table = Table("t", [f"c{i}" for i in range(num_cols)], rows)
    cea = {
        CellRef("t", r, c): f"Q{r}_{c}"
        for r in range(num_rows)
        for c in range(num_cols)
        if draw(st.booleans())
    }
    return TabularDataset("prop", [table], cea)


class TestNoiseProperties:
    @given(small_dataset_strategy(), st.floats(0.0, 1.0), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_noise_preserves_shape_and_truth(self, dataset, fraction, seed):
        noisy = dataset.with_noise(fraction, seed=seed)
        assert noisy.cea == dataset.cea
        assert noisy.cta == dataset.cta
        for original, corrupted in zip(dataset.tables, noisy.tables):
            assert corrupted.num_rows == original.num_rows
            assert corrupted.num_cols == original.num_cols

    @given(small_dataset_strategy(), st.floats(0.0, 1.0), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_only_annotated_cells_touched(self, dataset, fraction, seed):
        noisy = dataset.with_noise(fraction, seed=seed)
        annotated = set(dataset.annotated_cells())
        table = dataset.tables[0]
        for r in range(table.num_rows):
            for c in range(table.num_cols):
                ref = CellRef("t", r, c)
                if ref not in annotated:
                    assert noisy.cell_text(ref) == dataset.cell_text(ref)

    @given(small_dataset_strategy(), st.floats(0.0, 1.0), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_corruption_count_matches_fraction(self, dataset, fraction, seed):
        noisy = dataset.with_noise(fraction, seed=seed)
        expected = int(round(fraction * len(dataset.cea)))
        changed = sum(
            1
            for ref in dataset.annotated_cells()
            if noisy.cell_text(ref) != dataset.cell_text(ref)
        )
        # Corruption may be a no-op for degenerate strings, so changed can
        # undershoot but never exceed the sampled count.
        assert changed <= expected


class TestMaskProperties:
    @given(small_dataset_strategy(), st.floats(0.0, 1.0), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_mask_answers_are_exact(self, dataset, fraction, seed):
        masked, answers = dataset.with_masked_cells(fraction, seed=seed)
        assert len(answers) == int(round(fraction * len(dataset.cea)))
        for ref, original in answers.items():
            assert masked.cell_text(ref) == ""
            assert dataset.cell_text(ref) == original
