"""Tests for repro.tables.table."""

import pytest

from repro.tables.table import CellRef, Table


@pytest.fixture
def table() -> Table:
    return Table(
        table_id="t1",
        header=["country", "capital"],
        rows=[["germany", "berlin"], ["france", "paris"]],
    )


class TestTable:
    def test_dimensions(self, table):
        assert table.num_rows == 2
        assert table.num_cols == 2

    def test_cell_access(self, table):
        assert table.cell(0, 1) == "berlin"

    def test_set_cell(self, table):
        table.set_cell(0, 1, "bonn")
        assert table.cell(0, 1) == "bonn"

    def test_column(self, table):
        assert table.column(0) == ["germany", "france"]

    def test_column_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.column(5)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            Table("t", ["a", "b"], [["only one"]])

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Table("", ["a"])

    def test_copy_is_deep(self, table):
        clone = table.copy()
        clone.set_cell(0, 0, "changed")
        assert table.cell(0, 0) == "germany"

    def test_repr(self, table):
        assert "2x2" in repr(table)


class TestCellRef:
    def test_hashable_and_equal(self):
        assert CellRef("t", 1, 2) == CellRef("t", 1, 2)
        assert len({CellRef("t", 1, 2), CellRef("t", 1, 2)}) == 1

    def test_ordering_keys_distinct(self):
        assert CellRef("t", 0, 1) != CellRef("t", 1, 0)
