"""Tests for the prefer_dissimilar alias-substitution option."""

from repro.text.distance import levenshtein_ratio
from repro.text.tokenize import normalize


class TestPreferDissimilar:
    def test_picks_semantically_far_alias_when_available(self, tiny_kg):
        from repro.tables.dataset import TabularDataset
        from repro.tables.table import CellRef, Table

        germany = next(iter(tiny_kg.exact_lookup("germany")))
        table = Table("t", ["c"], [["germany"]])
        ds = TabularDataset("x", [table], {CellRef("t", 0, 0): germany})
        swapped = ds.with_alias_substitution(
            tiny_kg, seed=0, prefer_dissimilar=True
        )
        replacement = swapped.cell_text(CellRef("t", 0, 0))
        # Must be one of the genuinely dissimilar aliases, never the
        # near-identical "federal republic of germany"-style ones alone.
        assert levenshtein_ratio("germany", normalize(replacement)) < 0.5

    def test_falls_back_to_any_alias(self, tiny_kg):
        """Entities with only similar aliases still get substituted."""
        from repro.tables.dataset import TabularDataset
        from repro.tables.table import CellRef, Table

        target = None
        for entity in tiny_kg.entities():
            if entity.aliases and all(
                levenshtein_ratio(normalize(entity.label), normalize(a)) >= 0.5
                for a in entity.aliases
            ):
                target = entity
                break
        if target is None:
            import pytest

            pytest.skip("no entity with only-similar aliases in this KG")
        table = Table("t", ["c"], [[target.label]])
        ds = TabularDataset("x", [table], {CellRef("t", 0, 0): target.entity_id})
        swapped = ds.with_alias_substitution(
            tiny_kg, seed=0, prefer_dissimilar=True
        )
        assert swapped.cell_text(CellRef("t", 0, 0)) in target.aliases

    def test_default_behaviour_unchanged(self, small_kg, small_dataset):
        """Uniform sampling stays the default path."""
        swapped = small_dataset.with_alias_substitution(small_kg, seed=3)
        assert swapped.name.endswith("_aliases")
        changed = sum(
            1
            for ref in small_dataset.annotated_cells()
            if swapped.cell_text(ref) != small_dataset.cell_text(ref)
        )
        assert changed > 0
