"""Tests for the SemTab-style benchmark generator."""

import pytest

from repro.tables.generator import BenchmarkConfig, generate_benchmark
from repro.tables.table import CellRef


class TestConfig:
    def test_defaults(self):
        BenchmarkConfig()

    @pytest.mark.parametrize(
        "kwargs", [{"num_tables": 0}, {"min_rows": 0}, {"min_rows": 9, "max_rows": 5}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BenchmarkConfig(**kwargs)


class TestGeneration:
    def test_table_count(self, small_dataset):
        assert len(small_dataset.tables) == 12

    def test_row_bounds(self, small_kg):
        ds = generate_benchmark(
            small_kg, BenchmarkConfig(num_tables=8, min_rows=4, max_rows=6, seed=1)
        )
        for table in ds.tables:
            assert 4 <= table.num_rows <= 6

    def test_deterministic(self, small_kg):
        a = generate_benchmark(small_kg, BenchmarkConfig(num_tables=5, seed=7))
        b = generate_benchmark(small_kg, BenchmarkConfig(num_tables=5, seed=7))
        assert [t.rows for t in a.tables] == [t.rows for t in b.tables]

    def test_different_seeds_differ(self, small_kg):
        a = generate_benchmark(small_kg, BenchmarkConfig(num_tables=5, seed=1))
        b = generate_benchmark(small_kg, BenchmarkConfig(num_tables=5, seed=2))
        assert [t.rows for t in a.tables] != [t.rows for t in b.tables]


class TestGroundTruth:
    def test_cea_text_matches_entity_label(self, small_dataset, small_kg):
        """In the clean dataset each annotated cell holds the entity label."""
        for ref in small_dataset.annotated_cells():
            entity = small_kg.entity(small_dataset.cea[ref])
            assert small_dataset.cell_text(ref) == entity.label

    def test_subject_column_annotated_every_row(self, small_dataset):
        for table in small_dataset.tables:
            for r in range(table.num_rows):
                assert CellRef(table.table_id, r, 0) in small_dataset.cea

    def test_cta_subject_column_present(self, small_dataset):
        for table in small_dataset.tables:
            assert (table.table_id, 0) in small_dataset.cta

    def test_cta_types_exist_in_kg(self, small_dataset, small_kg):
        for type_id in small_dataset.cta.values():
            small_kg.type(type_id)  # raises on unknown

    def test_context_columns_consistent(self, small_dataset, small_kg):
        """Context-column entities really are related to the subject."""
        for table in small_dataset.tables:
            for r in range(table.num_rows):
                subject_ref = CellRef(table.table_id, r, 0)
                subject = small_dataset.cea[subject_ref]
                for c in range(1, table.num_cols):
                    ref = CellRef(table.table_id, r, c)
                    if ref in small_dataset.cea:
                        other = small_dataset.cea[ref]
                        assert other in small_kg.neighbors(subject)

    def test_tiny_kg_rejected_when_too_small(self, small_kg):
        from repro.kg.graph import KnowledgeGraph

        with pytest.raises(ValueError):
            generate_benchmark(KnowledgeGraph(), BenchmarkConfig())
