"""Tier-1 gate: the library source must lint clean against the baseline.

Runs the full rule set over ``src/repro`` and fails on any finding whose
fingerprint is not frozen in ``tools/lint_baseline.json``.  New deliberate
violations must either be fixed, suppressed inline with
``# repro: noqa[RULE]`` and a justification, or consciously accepted via
``python tools/run_lint.py --update-baseline``.
"""

from pathlib import Path

from repro.analysis import lint_paths, load_baseline, partition_findings, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_TREE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"


def test_source_tree_lints_clean():
    """No new lint findings in src/repro beyond the committed baseline."""
    findings = lint_paths([SOURCE_TREE])
    new, _known = partition_findings(findings, load_baseline(BASELINE))
    assert not new, "new lint findings:\n" + render_text(new)


def test_baseline_has_no_stale_entries():
    """Every baselined fingerprint still corresponds to a real finding.

    A stale entry means a violation was fixed without burning it out of
    the baseline — harmless for CI but misleading for reviewers.
    """
    current = {f.fingerprint for f in lint_paths([SOURCE_TREE])}
    stale = load_baseline(BASELINE) - current
    assert not stale, f"stale baseline fingerprints: {sorted(stale)}"


def test_baseline_contains_no_errors():
    """Only warnings may be baselined; error-severity rules must be fixed."""
    findings = lint_paths([SOURCE_TREE])
    _new, known = partition_findings(findings, load_baseline(BASELINE))
    errors = [f for f in known if f.severity == "error"]
    assert not errors, "error-severity findings in baseline:\n" + render_text(errors)
