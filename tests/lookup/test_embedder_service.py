"""Tests for EmbedderLookupService (the Table VII harness adapter)."""

import numpy as np
import pytest

from repro.embedding.fasttext import FastTextConfig, FastTextModel
from repro.lookup.embedder_service import EmbedderLookupService


@pytest.fixture(scope="module")
def service(tiny_kg):
    model = FastTextModel(FastTextConfig(dim=32, epochs=2, seed=0))
    model.fit([list(e.mentions) for e in tiny_kg.entities()])
    return EmbedderLookupService.build(tiny_kg, embedder=model, name="fasttext")


class TestEmbedderService:
    def test_build_requires_embedder(self, tiny_kg):
        with pytest.raises(ValueError):
            EmbedderLookupService.build(tiny_kg)

    def test_exact_label_recovered(self, service, tiny_kg):
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        hits = [c.entity_id for c in service.lookup("germany", 10)]
        assert germany in hits

    def test_scores_descend(self, service):
        scores = [c.score for c in service.lookup("berlin", 10)]
        assert scores == sorted(scores, reverse=True)

    def test_k_respected(self, service):
        assert len(service.lookup("paris", 4)) <= 4

    def test_index_bytes(self, service, tiny_kg):
        assert service.index_bytes() == tiny_kg.num_entities * 32 * 4

    def test_name(self, service):
        assert service.name == "fasttext"


class TestCloneWithCompression:
    def test_shares_model_changes_index(self, trained_service, tiny_kg):
        from repro.index.flat import FlatIndex

        clone = trained_service.clone_with_compression("none")
        assert clone.model is trained_service.model
        assert isinstance(clone.index, FlatIndex)
        assert clone.index.ntotal == trained_service.index.ntotal

    def test_identical_embeddings(self, trained_service):
        clone = trained_service.clone_with_compression("none")
        a = trained_service.model.embed(["germany"])
        b = clone.model.embed(["germany"])
        np.testing.assert_array_equal(a, b)

    def test_requires_fitted(self):
        from repro.core.pipeline import EmbLookup

        with pytest.raises(RuntimeError):
            EmbLookup().clone_with_compression("none")
