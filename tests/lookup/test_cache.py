"""Tests for repro.lookup.cache and its wiring into the services."""

import copy
import dataclasses

import numpy as np
import pytest

from repro.lookup.cache import QueryCache
from repro.lookup.embedder_service import EmbedderLookupService
from repro.lookup.emblookup_service import EmbLookupService


class CountingEmbedder:
    """Deterministic hash embedder that counts embed() calls."""

    def __init__(self, dim=8):
        self._dim = dim
        self.calls = 0
        self.strings_embedded = 0

    @property
    def dim(self):
        return self._dim

    def embed(self, mentions):
        self.calls += 1
        self.strings_embedded += len(mentions)
        out = np.zeros((len(mentions), self._dim), dtype=np.float32)
        for i, m in enumerate(mentions):
            rng = np.random.default_rng(abs(hash(m)) % (2**32))
            out[i] = rng.normal(size=self._dim)
        return out


class TestQueryCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QueryCache(0)

    def test_embedding_roundtrip_and_counters(self):
        cache = QueryCache(4)
        assert cache.get_embedding("usa") is None
        cache.put_embedding("usa", np.ones(3))
        np.testing.assert_array_equal(cache.get_embedding("usa"), np.ones(3))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_stored_embedding_is_copied(self):
        cache = QueryCache(4)
        vec = np.ones(3)
        cache.put_embedding("q", vec)
        vec[:] = 0.0
        np.testing.assert_array_equal(cache.get_embedding("q"), np.ones(3))

    def test_lru_eviction_order(self):
        cache = QueryCache(2)
        cache.put_embedding("a", np.zeros(1))
        cache.put_embedding("b", np.zeros(1))
        cache.get_embedding("a")  # refresh "a": now "b" is the LRU entry
        cache.put_embedding("c", np.zeros(1))
        assert cache.get_embedding("b") is None
        assert cache.get_embedding("a") is not None
        assert cache.stats.evictions == 1

    def test_result_store_disabled_by_default(self):
        cache = QueryCache(4)
        assert not cache.caches_results
        cache.put_result("q", 5, [("e", 1.0)])
        assert cache.get_result("q", 5) is None

    def test_result_store_keyed_by_query_and_k(self):
        cache = QueryCache(4, cache_results=True)
        cache.put_result("q", 5, ["row5"])
        assert cache.get_result("q", 5) == ["row5"]
        assert cache.get_result("q", 10) is None

    def test_clear_and_len(self):
        cache = QueryCache(4, cache_results=True)
        cache.put_embedding("a", np.zeros(1))
        cache.put_result("a", 3, [])
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_stats_dict_keys(self):
        assert set(QueryCache(1).stats_dict()) == {
            "hits",
            "misses",
            "evictions",
            "hit_rate",
        }


class TestEmbedderServiceCache:
    def test_repeated_queries_skip_the_embedder(self, tiny_kg):
        embedder = CountingEmbedder()
        service = EmbedderLookupService.build(
            tiny_kg, embedder=embedder, cache_size=16
        )
        queries = ["Germany", "France", "Germany"]
        first = service.lookup_batch(queries, 5)
        before = embedder.strings_embedded
        second = service.lookup_batch(queries, 5)
        assert embedder.strings_embedded == before  # all three cached
        assert first == second

    def test_cache_disabled_by_default(self, tiny_kg):
        service = EmbedderLookupService.build(
            tiny_kg, embedder=CountingEmbedder()
        )
        assert service.cache is None

    def test_duplicate_queries_in_one_batch(self, tiny_kg):
        service = EmbedderLookupService.build(
            tiny_kg, embedder=CountingEmbedder(), cache_size=16
        )
        rows = service.lookup_batch(["x", "x", "x"], 3)
        assert rows[0] == rows[1] == rows[2]


class TestEmptyIndexServices:
    """Satellite: no k clamp — empty indexes yield empty candidate lists."""

    def test_embedder_service_empty_index(self):
        service = EmbedderLookupService(CountingEmbedder())
        assert service.lookup_batch(["anything", "else"], 7) == [[], []]

    def test_k_exceeding_ntotal_returns_all_rows(self, tiny_kg):
        service = EmbedderLookupService.build(
            tiny_kg, embedder=CountingEmbedder()
        )
        n = service._index.ntotal
        rows = service.lookup_batch(["germany"], n + 50)
        assert len(rows[0]) == n  # padded (-1) rows filtered, none invented


class TestEmbLookupServiceCache:
    def test_config_flag_enables_result_cache(self, trained_service):
        pipeline = copy.copy(trained_service)
        pipeline.config = dataclasses.replace(
            trained_service.config, query_cache_size=8
        )
        service = EmbLookupService(pipeline)
        assert service.cache is not None
        assert service.cache.caches_results

    def test_cached_results_identical_and_hit_counted(self, trained_service):
        cache = QueryCache(8, cache_results=True)
        service = EmbLookupService(trained_service, cache=cache)
        first = service.lookup_batch(["germany", "france"], 5)
        hits_before = cache.stats.hits
        second = service.lookup_batch(["germany", "france"], 5)
        assert second == first
        assert cache.stats.hits >= hits_before + 2

    def test_no_cache_by_default(self, trained_service):
        assert EmbLookupService(trained_service).cache is None
