"""Behavioural tests for the eight baseline lookup services.

Each service has a characteristic accuracy/robustness profile the paper's
Table V depends on; these tests pin those profiles on the shared KG.
"""

import pytest

from repro.lookup.elastic import ElasticLookup
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.levenshtein import LevenshteinLookup
from repro.lookup.lsh_lookup import LSHStringLookup
from repro.lookup.qgram import QGramLookup
from repro.lookup.remote import RemoteServiceModel, SimulatedRemoteLookup


@pytest.fixture(scope="module", params=[
    ExactMatchLookup, LevenshteinLookup, FuzzyWuzzyLookup,
    QGramLookup, ElasticLookup, LSHStringLookup,
])
def any_service(request, tiny_kg):
    return request.param.build(tiny_kg)


class TestCommonBehaviour:
    def test_exact_label_found(self, any_service, tiny_kg):
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        candidates = any_service.lookup("germany", 10)
        assert germany in [c.entity_id for c in candidates]

    def test_scores_descend(self, any_service):
        candidates = any_service.lookup("berlin", 10)
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_no_duplicate_entities(self, any_service):
        candidates = any_service.lookup("paris", 10)
        ids = [c.entity_id for c in candidates]
        assert len(ids) == len(set(ids))

    def test_k_respected(self, any_service):
        assert len(any_service.lookup("london", 3)) <= 3

    def test_batch_alignment(self, any_service):
        queries = ["germany", "france", "spain"]
        batch = any_service.lookup_batch(queries, 5)
        assert len(batch) == 3


class TestExactMatch:
    def test_misses_typos(self, tiny_kg):
        service = ExactMatchLookup.build(tiny_kg)
        assert service.lookup("germny", 10) == []

    def test_alias_index_option(self, tiny_kg):
        without = ExactMatchLookup.build(tiny_kg)
        with_aliases = ExactMatchLookup.build(tiny_kg, include_aliases=True)
        assert without.lookup("deutschland", 5) == []
        assert with_aliases.lookup("deutschland", 5) != []
        assert with_aliases.index_bytes() > without.index_bytes()


class TestLevenshtein:
    def test_tolerates_one_edit(self, tiny_kg):
        service = LevenshteinLookup.build(tiny_kg)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [c.entity_id for c in service.lookup("germny", 5)]

    def test_score_is_negative_distance(self, tiny_kg):
        service = LevenshteinLookup.build(tiny_kg)
        top = service.lookup("germany", 1)[0]
        assert top.score == 0.0  # exact match, distance 0


class TestFuzzyWuzzy:
    def test_token_reorder_matched(self, tiny_kg):
        """token_sort_ratio catches swapped words."""
        service = FuzzyWuzzyLookup.build(tiny_kg)
        gates = next(iter(tiny_kg.exact_lookup("bill gates")))
        assert gates in [c.entity_id for c in service.lookup("gates bill", 5)]


class TestQGram:
    def test_tolerates_typo(self, tiny_kg):
        service = QGramLookup.build(tiny_kg)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [c.entity_id for c in service.lookup("germani", 10)]

    def test_empty_query(self, tiny_kg):
        service = QGramLookup.build(tiny_kg)
        assert service.lookup("", 5) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramLookup(q=0)


class TestElastic:
    def test_fuzzy_expansion_recovers_typos(self, tiny_kg):
        service = ElasticLookup.build(tiny_kg)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [c.entity_id for c in service.lookup("germny", 10)]

    def test_fuzziness_zero_is_faster_but_weaker(self, tiny_kg):
        strict = ElasticLookup.build(tiny_kg, fuzziness=0)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        # Word channel misses, trigram channel may still catch it — but the
        # candidate score must be no better than with expansion.
        fuzzy = ElasticLookup.build(tiny_kg)
        def score_of(service):
            for c in service.lookup("germny", 10):
                if c.entity_id == germany:
                    return c.score
            return 0.0
        assert score_of(strict) <= score_of(fuzzy) + 1e-9

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            ElasticLookup(word_weight=-1)


class TestLSHString:
    def test_near_duplicate_found(self, tiny_kg):
        service = LSHStringLookup.build(tiny_kg)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [c.entity_id for c in service.lookup("germany", 5)]

    def test_bands_must_divide_hashes(self):
        with pytest.raises(ValueError):
            LSHStringLookup(num_hashes=10, bands=3)


class TestSimulatedRemote:
    def test_latency_accounted_not_slept(self, tiny_kg):
        import time

        service = SimulatedRemoteLookup.build(tiny_kg)
        start = time.perf_counter()
        service.lookup_batch(["germany"] * 100, 5)
        wall = time.perf_counter() - start
        assert service.simulated_latency > 1.0   # 100 queries / 5 parallel * 60ms
        assert wall < service.simulated_latency  # virtual, not real

    def test_knows_aliases(self, tiny_kg):
        """Remote endpoints index the full KG, aliases included."""
        service = SimulatedRemoteLookup.build(tiny_kg)
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [
            c.entity_id for c in service.lookup("deutschland", 5)
        ]

    def test_rate_limit_floor(self):
        model = RemoteServiceModel(
            latency_seconds=0.001, max_parallel=100, requests_per_second=10
        )
        assert model.batch_latency(100) == pytest.approx(10.0)

    def test_wave_latency(self):
        model = RemoteServiceModel(
            latency_seconds=0.1, max_parallel=5, requests_per_second=1e9
        )
        assert model.batch_latency(12) == pytest.approx(0.3)  # 3 waves

    def test_model_validation(self):
        with pytest.raises(ValueError):
            RemoteServiceModel(latency_seconds=-1)
        with pytest.raises(ValueError):
            RemoteServiceModel(max_parallel=0)

    def test_zero_queries_free(self):
        assert RemoteServiceModel().batch_latency(0) == 0.0
