"""Behavioural profile of the simulated remote endpoints after the
"limited fuzzy support" modelling (paper Section I).

Remote services index the full KG (labels + aliases) but match at the
word level only: clean and alias queries resolve, mid-word typos miss.
"""

import pytest

from repro.lookup.remote import RemoteServiceModel, SimulatedRemoteLookup


@pytest.fixture(scope="module")
def remote(tiny_kg):
    return SimulatedRemoteLookup.build(tiny_kg, name="wikidata_api")


class TestRemoteMatcherProfile:
    def test_clean_label_resolves(self, remote, tiny_kg):
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [c.entity_id for c in remote.lookup("germany", 10)]

    def test_alias_resolves(self, remote, tiny_kg):
        """Remote endpoints know aliases (they index the whole KG)."""
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        assert germany in [
            c.entity_id for c in remote.lookup("deutschland", 10)
        ]

    def test_single_word_typo_misses(self, remote, tiny_kg):
        """Limited fuzzy support: a mid-word typo on a one-word label has
        no matching word token."""
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        hits = [c.entity_id for c in remote.lookup("germXny", 10)]
        assert germany not in hits

    def test_multiword_partial_match_survives(self, remote, tiny_kg):
        """A typo in one token of a multi-word mention still matches the
        other token."""
        gates = next(iter(tiny_kg.exact_lookup("bill gates")))
        hits = [c.entity_id for c in remote.lookup("bill gatXs", 10)]
        assert gates in hits

    def test_latency_scales_with_batch(self, remote):
        remote.reset_timers()
        remote.lookup_batch(["germany"] * 10, 5)
        small = remote.simulated_latency
        remote.reset_timers()
        remote.lookup_batch(["germany"] * 100, 5)
        large = remote.simulated_latency
        assert large > small * 5
