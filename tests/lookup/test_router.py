"""LookupRouter tiers, LabelHashTable, TypeFilterMap, normalization unity."""

import pytest

from repro.lookup import (
    ExactMatchLookup,
    LabelHashTable,
    LookupRouter,
    LookupService,
    QueryCache,
    TypeFilterMap,
    normalize,
)
from repro.index.partitioned import DEFAULT_PARTITION
from repro.lookup.base import Candidate
from repro.lookup.router import alpha_ratio
from repro.text.tokenize import normalize as text_normalize


class StubService(LookupService):
    """Records every batch it serves; returns canned candidates."""

    name = "stub"

    def __init__(self, rows=None):
        super().__init__()
        self.calls: list[list[str]] = []
        self.rows = rows or [Candidate("stub:answer", 0.5)]

    def _lookup_batch(self, queries, k):
        self.calls.append(list(queries))
        return [list(self.rows)[:k] for _ in queries]


@pytest.fixture(scope="module")
def router_parts(tiny_kg):
    table = LabelHashTable.build(tiny_kg)
    type_map = TypeFilterMap.from_kg(tiny_kg)
    return tiny_kg, table, type_map


class TestNormalizationUnity:
    def test_lookup_normalize_is_the_text_normalizer(self):
        assert normalize is text_normalize

    def test_cache_and_label_table_share_the_helper(self, tiny_kg):
        assert QueryCache._normalize("  Ångström  ") == normalize("  Ångström  ")
        table = LabelHashTable.build(tiny_kg)
        entity = next(tiny_kg.entities())
        assert table.lookup(f"  {entity.label.upper()}  ") == table.lookup(
            entity.label
        )

    def test_cache_normalizes_its_own_keys(self):
        cache = QueryCache(8, cache_results=True)
        cache.put_result("  Germany ", 3, [Candidate("e1", 1.0)])
        assert cache.get_result("germany", 3) == [Candidate("e1", 1.0)]

    def test_cache_result_scope_isolates_type_filters(self):
        cache = QueryCache(8, cache_results=True)
        cache.put_result("germany", 3, [Candidate("e1", 1.0)], scope="country")
        assert cache.get_result("germany", 3) is None
        assert cache.get_result("germany", 3, scope="country") == [
            Candidate("e1", 1.0)
        ]

    def test_exact_match_lookup_agrees_with_label_table(self, tiny_kg):
        exact = ExactMatchLookup.build(tiny_kg, include_aliases=True)
        table = LabelHashTable.build(tiny_kg)
        for entity in list(tiny_kg.entities())[:20]:
            got = {c.entity_id for c in exact.lookup(entity.label, 50)}
            assert set(table.lookup(entity.label)) == got


class TestLabelHashTable:
    def test_build_indexes_labels_and_aliases(self, tiny_kg):
        table = LabelHashTable.build(tiny_kg)
        entity = next(e for e in tiny_kg.entities() if e.aliases)
        assert entity.entity_id in table.lookup(entity.label)
        assert entity.entity_id in table.lookup(entity.aliases[0])
        assert len(table) > 0
        assert table.index_bytes() > 0

    def test_labels_only_mode_skips_aliases(self, tiny_kg):
        table = LabelHashTable.build(tiny_kg, include_aliases=False)
        entity = next(
            e
            for e in tiny_kg.entities()
            if e.aliases and normalize(e.aliases[0]) != normalize(e.label)
        )
        alias_hits = table.lookup(entity.aliases[0])
        assert entity.entity_id not in alias_hits

    def test_add_dedups_entity_ids_and_skips_empty_keys(self):
        table = LabelHashTable()
        table.add("Same", "e1")
        table.add("same ", "e1")
        table.add("   ", "e9")
        assert table.lookup("SAME") == ("e1",)
        assert len(table) == 1

    def test_miss_returns_empty_tuple(self):
        assert LabelHashTable().lookup("anything") == ()


class TestAlphaRatio:
    def test_ratio_values(self):
        assert alpha_ratio("germany") == 1.0
        assert alpha_ratio("b-52") == pytest.approx(0.25)
        assert alpha_ratio("12345") == 0.0
        assert alpha_ratio("   ") == 0.0
        assert alpha_ratio("ab 12") == pytest.approx(0.5)


class TestRouting:
    def test_exact_hit_short_circuits_other_tiers(self, router_parts):
        kg, table, _ = router_parts
        ann, fuzzy = StubService(), StubService()
        router = LookupRouter(table, ann=ann, fuzzy=fuzzy)
        entity = next(kg.entities())
        row = router.lookup(entity.label, 5)
        assert row[0] == Candidate(entity.entity_id, 1.0)
        assert ann.calls == [] and fuzzy.calls == []
        assert router.router_stats() == {
            "exact_hits": 1,
            "fuzzy_routed": 0,
            "ann_routed": 0,
        }

    def test_short_queries_route_to_fuzzy(self, router_parts):
        _, table, _ = router_parts
        ann, fuzzy = StubService(), StubService()
        router = LookupRouter(
            table, ann=ann, fuzzy=fuzzy, min_string_length_to_trigger=6
        )
        row = router.lookup("zzzqq", 5)
        assert row == [Candidate("stub:answer", 0.5)]
        assert fuzzy.calls == [["zzzqq"]] and ann.calls == []
        assert router.router_stats()["fuzzy_routed"] == 1

    def test_low_alpha_queries_route_to_fuzzy(self, router_parts):
        _, table, _ = router_parts
        ann, fuzzy = StubService(), StubService()
        router = LookupRouter(table, ann=ann, fuzzy=fuzzy)
        router.lookup("0x1234-zq", 5)
        assert fuzzy.calls and not ann.calls

    def test_long_alphabetic_queries_route_to_ann(self, router_parts):
        _, table, _ = router_parts
        ann, fuzzy = StubService(), StubService()
        router = LookupRouter(table, ann=ann, fuzzy=fuzzy)
        query = "an unindexed alphabetic query"
        row = router.lookup(query, 5)
        assert row == [Candidate("stub:answer", 0.5)]
        assert ann.calls == [[query]] and not fuzzy.calls
        assert router.router_stats()["ann_routed"] == 1

    def test_without_fuzzy_tier_short_queries_fall_to_ann(self, router_parts):
        _, table, _ = router_parts
        ann = StubService()
        router = LookupRouter(table, ann=ann, fuzzy=None)
        router.lookup("zq", 5)
        assert ann.calls == [["zq"]]

    def test_missing_ann_tier_raises(self, router_parts):
        _, table, _ = router_parts
        router = LookupRouter(table, ann=None, fuzzy=None)
        with pytest.raises(RuntimeError, match="no ANN tier"):
            router.lookup("an unindexed alphabetic query", 5)

    def test_mixed_batch_preserves_positions(self, router_parts):
        kg, table, _ = router_parts
        ann, fuzzy = StubService(), StubService()
        router = LookupRouter(table, ann=ann, fuzzy=fuzzy)
        entity = next(kg.entities())
        rows = router.lookup_batch(
            [entity.label, "zq", "an unindexed alphabetic query"], 4
        )
        assert rows[0][0].entity_id == entity.entity_id
        assert rows[1] == [Candidate("stub:answer", 0.5)]
        assert rows[2] == [Candidate("stub:answer", 0.5)]

    def test_tier_timers_reset(self, router_parts):
        kg, table, _ = router_parts
        router = LookupRouter(table, ann=StubService(), fuzzy=StubService())
        router.lookup(next(kg.entities()).label, 3)
        assert router.tier_seconds()["exact"] > 0
        router.reset_timers()
        assert all(v == 0.0 for v in router.tier_seconds().values())

    def test_build_constructs_fuzzy_by_name(self, tiny_kg):
        for name in ("qgram", "levenshtein"):
            router = LookupRouter.build(tiny_kg, ann=StubService(), fuzzy=name)
            assert router.fuzzy is not None and router.fuzzy.name != "router"
        with pytest.raises(ValueError, match="fuzzy"):
            LookupRouter.build(tiny_kg, fuzzy="nope")

    def test_validates_knobs(self, router_parts):
        _, table, _ = router_parts
        with pytest.raises(ValueError, match="min_string_length"):
            LookupRouter(table, min_string_length_to_trigger=-1)
        with pytest.raises(ValueError, match="min_alpha_ratio"):
            LookupRouter(table, min_alpha_ratio=1.5)

    def test_index_bytes_sums_tiers(self, tiny_kg):
        router = LookupRouter.build(tiny_kg, ann=StubService(), fuzzy="qgram")
        assert (
            router.index_bytes()
            >= router.label_table.index_bytes() + router.fuzzy.index_bytes()
        )


class TestTypeFilter:
    def test_supports_type_filter(self, router_parts):
        _, table, _ = router_parts
        assert LookupRouter(table).supports_type_filter
        assert not StubService().supports_type_filter
        with pytest.raises(NotImplementedError, match="type_filter"):
            StubService().lookup("x", 3, type_filter="country")

    def test_type_map_matches_kg_transitive_membership(self, router_parts):
        kg, _, type_map = router_parts
        for entity_type in kg.types():
            tid = entity_type.type_id
            assert type_map.allowed(tid) == set(
                kg.entities_of_type(tid, transitive=True)
            )
        with pytest.raises(KeyError, match="unknown type"):
            type_map.allowed("no-such-type")
        with pytest.raises(KeyError, match="unknown type"):
            type_map.partitions_for("no-such-type")

    def test_partitions_cover_every_allowed_entity(self, router_parts):
        kg, _, type_map = router_parts
        for entity_type in kg.types():
            tid = entity_type.type_id
            partitions = set(type_map.partitions_for(tid))
            for eid in type_map.allowed(tid):
                entity = kg.entity(eid)
                assert (entity.primary_type or DEFAULT_PARTITION) in partitions

    def test_exact_hit_filtered_by_type(self, router_parts):
        kg, table, type_map = router_parts
        ann = StubService()
        router = LookupRouter(table, ann=ann, type_map=type_map)
        entity = next(e for e in kg.entities() if e.type_ids)
        tid = entity.type_ids[0]
        row = router.lookup(entity.label, 5, type_filter=tid)
        assert row[0] == Candidate(entity.entity_id, 1.0)
        hit_ids = {c.entity_id for c in row}
        assert hit_ids <= type_map.allowed(tid)

    def test_wrong_type_exact_hit_falls_through_to_ann(self, router_parts):
        kg, table, type_map = router_parts
        entity = next(e for e in kg.entities() if e.type_ids)
        other = next(
            t.type_id
            for t in kg.types()
            if entity.entity_id not in type_map.allowed(t.type_id)
        )
        allowed = type_map.allowed(other)
        some_allowed = next(iter(allowed))
        ann = StubService(
            rows=[Candidate(entity.entity_id, 0.9), Candidate(some_allowed, 0.1)]
        )
        router = LookupRouter(table, ann=ann, type_map=type_map)
        row = router.lookup(entity.label, 5, type_filter=other)
        # The exact hit is inadmissible, so the ANN tier answers and its
        # inadmissible candidates are post-filtered out.
        assert ann.calls
        assert row == [Candidate(some_allowed, 0.1)]

    def test_type_filter_without_map_raises(self, router_parts):
        _, table, _ = router_parts
        router = LookupRouter(table, ann=StubService())
        with pytest.raises(RuntimeError, match="TypeFilterMap"):
            router.lookup("query", 3, type_filter="country")
