"""Tests for the LookupService base machinery."""

import pytest

from repro.lookup.base import Candidate, LookupService


class EchoService(LookupService):
    """Returns a constant candidate; used to test base-class plumbing."""

    name = "echo"

    def _lookup_batch(self, queries, k):
        return [[Candidate("Q1", 1.0)] for _ in queries]


class TestBase:
    def test_lookup_delegates_to_batch(self):
        service = EchoService()
        assert service.lookup("x", 3) == [Candidate("Q1", 1.0)]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            EchoService().lookup("x", 0)

    def test_empty_batch_shortcuts(self):
        service = EchoService()
        assert service.lookup_batch([], 5) == []
        assert service.query_time.count == 0

    def test_timing_instrumented(self):
        service = EchoService()
        service.lookup_batch(["a", "b"], 1)
        service.lookup_batch(["c"], 1)
        assert service.query_time.count == 2
        assert service.total_lookup_seconds >= service.query_time.total

    def test_reset_timers(self):
        service = EchoService()
        service.lookup("x", 1)
        service.simulated_latency = 5.0
        service.reset_timers()
        assert service.total_lookup_seconds == 0.0

    def test_default_index_bytes_zero(self):
        assert EchoService().index_bytes() == 0

    def test_abstract_hooks(self):
        with pytest.raises(NotImplementedError):
            LookupService().lookup("x", 1)
