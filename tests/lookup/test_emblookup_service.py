"""Tests for the EmbLookupService adapter."""

import pytest

from repro.core.pipeline import EmbLookup
from repro.lookup.emblookup_service import GPU_SPEEDUP_MODEL, EmbLookupService


@pytest.fixture(scope="module")
def service(trained_service):
    return EmbLookupService(trained_service)


class TestAdapter:
    def test_requires_fitted_pipeline(self):
        with pytest.raises(ValueError):
            EmbLookupService(EmbLookup())

    def test_candidates_scored_by_negative_distance(self, service):
        candidates = service.lookup("germany", 5)
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)
        assert all(s <= 0 for s in scores)

    def test_typo_robustness(self, service, tiny_kg):
        """The headline behaviour: GERMONEY-style typos still retrieve."""
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        hits = [c.entity_id for c in service.lookup("germanyy", 10)]
        assert germany in hits

    def test_semantic_alias_lookup(self, service, tiny_kg):
        """DEUTSCHLAND retrieves GERMANY without the alias being indexed."""
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        hits = [c.entity_id for c in service.lookup("deutschland", 10)]
        assert germany in hits

    def test_index_bytes_positive(self, service):
        assert service.index_bytes() > 0

    def test_name_reflects_compression(self, service):
        assert service.name == "emblookup"


class TestGpuModel:
    def test_gpu_mode_divides_time(self, trained_service):
        cpu = EmbLookupService(trained_service, gpu_mode=False)
        gpu = EmbLookupService(trained_service, gpu_mode=True)
        cpu.lookup_batch(["germany"] * 20, 5)
        gpu.lookup_batch(["germany"] * 20, 5)
        ratio = cpu.total_lookup_seconds / gpu.total_lookup_seconds
        # Same measured work, GPU-modelled time divided by the multiplier.
        assert ratio == pytest.approx(
            cpu.query_time.total / (gpu.query_time.total / GPU_SPEEDUP_MODEL),
            rel=0.2,
        )
