"""Behavioural matrix: which lookup service tolerates which error family.

Table V's accuracy columns emerge from these per-family behaviours: exact
match dies on any edit; edit-distance matchers absorb character edits but
not abbreviations; only alias-aware indexes (and EmbLookup's embedding)
handle semantic renames.
"""

import pytest

from repro.lookup.elastic import ElasticLookup
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.levenshtein import LevenshteinLookup
from repro.lookup.qgram import QGramLookup


@pytest.fixture(scope="module")
def germany(tiny_kg):
    return next(iter(tiny_kg.exact_lookup("germany")))


def hit(service, query, truth, k=10):
    return truth in [c.entity_id for c in service.lookup(query, k)]


class TestSingleTypo:
    """One substitution: 'germany' -> 'germony'."""

    def test_exact_misses(self, tiny_kg, germany):
        assert not hit(ExactMatchLookup.build(tiny_kg), "germony", germany)

    @pytest.mark.parametrize(
        "service_cls",
        [LevenshteinLookup, FuzzyWuzzyLookup, QGramLookup, ElasticLookup],
    )
    def test_fuzzy_families_recover(self, service_cls, tiny_kg, germany):
        assert hit(service_cls.build(tiny_kg), "germony", germany)


class TestTokenSwap:
    """'bill gates' -> 'gates bill'."""

    def test_fuzzywuzzy_token_sort_recovers(self, tiny_kg):
        gates = next(iter(tiny_kg.exact_lookup("bill gates")))
        assert hit(FuzzyWuzzyLookup.build(tiny_kg), "gates bill", gates)

    def test_elastic_word_channel_recovers(self, tiny_kg):
        gates = next(iter(tiny_kg.exact_lookup("bill gates")))
        assert hit(ElasticLookup.build(tiny_kg), "gates bill", gates)


class TestAlias:
    """Semantic rename: 'deutschland' for 'germany'."""

    @pytest.mark.parametrize(
        "service_cls",
        [ExactMatchLookup, LevenshteinLookup, FuzzyWuzzyLookup, QGramLookup],
    )
    def test_label_only_indexes_fail(self, service_cls, tiny_kg, germany):
        service = service_cls.build(tiny_kg)  # label-only index
        assert not hit(service, "deutschland", germany, k=5)

    @pytest.mark.parametrize(
        "service_cls",
        [ExactMatchLookup, FuzzyWuzzyLookup],
    )
    def test_alias_indexes_succeed(self, service_cls, tiny_kg, germany):
        service = service_cls.build(tiny_kg, include_aliases=True)
        assert hit(service, "deutschland", germany)


class TestAbbreviation:
    """'european union' -> 'eu' — hard for every syntactic matcher."""

    def test_edit_distance_scan_fails(self, tiny_kg):
        eu = next(iter(tiny_kg.exact_lookup("european union")))
        service = LevenshteinLookup.build(tiny_kg)
        # 'eu' is edit-distance-close to many 2-3 letter strings; the true
        # entity's 14-char label is 12 edits away.
        assert not hit(service, "eu", eu, k=5)

    def test_alias_aware_index_succeeds(self, tiny_kg):
        eu = next(iter(tiny_kg.exact_lookup("european union")))
        service = ExactMatchLookup.build(tiny_kg, include_aliases=True)
        assert hit(service, "eu", eu, k=5)
