"""Focused tests of JenTab's and MantisTable's distinguishing machinery."""

import pytest

from repro.annotation.jentab import JenTabAnnotator
from repro.annotation.mantistable import MantisTableAnnotator
from repro.lookup.base import Candidate, LookupService
from repro.lookup.elastic import ElasticLookup
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table


class CountingLookup(LookupService):
    """Wraps another service, counting queries (to observe reformulation)."""

    name = "counting"

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self.queries_seen: list[str] = []

    def _lookup_batch(self, queries, k):
        self.queries_seen.extend(queries)
        return self.inner._lookup_batch(queries, k)


class TestJenTabReformulation:
    def test_retry_with_token_sorted_query(self, small_kg):
        """Cells whose primary lookup is weak get a token-sorted retry.

        Exact match returns no candidates for the scrambled cell, which
        forces the reformulation path (elastic's trigram channel would
        return plenty and skip the retry).
        """
        from repro.lookup.exact import ExactMatchLookup

        counting = CountingLookup(ExactMatchLookup.build(small_kg))
        annotator = JenTabAnnotator(counting, candidate_k=20)
        germany = next(iter(small_kg.exact_lookup("bill gates")))
        table = Table("t", ["person"], [["gates zzqq bill"]])
        ds = TabularDataset("x", [table], {CellRef("t", 0, 0): germany})
        annotator.annotate_cells(ds, small_kg)
        # The reformulated (sorted-token) query must have been issued.
        assert any(
            q == "bill gates zzqq" for q in counting.queries_seen
        ), counting.queries_seen

    def test_type_compatibility_spans_hierarchy(self, small_kg):
        elastic = ElasticLookup.build(small_kg)
        berlin_candidates = small_kg.exact_lookup("berlin")
        capital = next(
            (e for e in berlin_candidates
             if "capital" in small_kg.entity(e).type_ids),
            None,
        )
        if capital is None:
            pytest.skip("no capital berlin in KG")
        # A 'capital' entity is compatible with a 'city' column type.
        assert JenTabAnnotator._type_compatible(small_kg, capital, "city")
        assert JenTabAnnotator._type_compatible(small_kg, capital, "place")
        assert not JenTabAnnotator._type_compatible(small_kg, capital, "person")


class TestMantisTableTypeScoring:
    def test_column_type_bonus_changes_choice(self, small_kg):
        """With two same-name entities of different types, the dominant
        column type must tip the decision."""
        homonyms = [
            eid for eid in small_kg.exact_lookup("berlin")
        ]
        capital = next(
            (e for e in homonyms if "capital" in small_kg.entity(e).type_ids),
            None,
        )
        if capital is None or len(homonyms) < 1:
            pytest.skip("needs the berlin homonym")

        elastic = ElasticLookup.build(small_kg)
        # Column full of unambiguous capitals drives the type vote.
        rows = [["paris"], ["madrid"], ["rome"], ["berlin"]]
        cea = {}
        for r, (label,) in enumerate(rows):
            ids = [
                eid for eid in small_kg.exact_lookup(label)
                if "capital" in small_kg.entity(eid).type_ids
            ]
            cea[CellRef("t", r, 0)] = ids[0]
        ds = TabularDataset("x", [Table("t", ["capital"], rows)], cea)
        annotator = MantisTableAnnotator(elastic, type_weight=0.5)
        predictions = annotator.annotate_cells(ds, small_kg)
        assert predictions[CellRef("t", 3, 0)] == capital
