"""Tests for the DoSeR collective disambiguator."""

import pytest

from repro.annotation.doser import DoSeRDisambiguator
from repro.lookup.elastic import ElasticLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup


@pytest.fixture(scope="module")
def doser(small_kg):
    return DoSeRDisambiguator(ElasticLookup.build(small_kg))


class TestDisambiguation:
    def test_clean_mentions_resolved(self, doser, small_kg):
        mentions = ["germany", "france", "spain", "italy"]
        resolved = doser.disambiguate(mentions, small_kg)
        for mention, entity_id in zip(mentions, resolved):
            assert entity_id is not None
            assert small_kg.entity(entity_id).label == mention

    def test_empty_input(self, doser, small_kg):
        assert doser.disambiguate([], small_kg) == []

    def test_unresolvable_mention_is_none_or_guess(self, doser, small_kg):
        resolved = doser.disambiguate(["zzzzqqqq"], small_kg)
        assert len(resolved) == 1  # may be None or a weak guess

    def test_coherence_helps_ambiguous_mention(self, small_kg):
        """'berlin' next to 'germany' should resolve to the German capital
        rather than a homonym, thanks to the candidate-graph edges."""
        doser = DoSeRDisambiguator(FuzzyWuzzyLookup.build(small_kg))
        berlin_de = None
        for eid in small_kg.exact_lookup("berlin"):
            if "capital" in small_kg.entity(eid).type_ids:
                berlin_de = eid
        if berlin_de is None:
            pytest.skip("no capital Berlin in this KG build")
        resolved = doser.disambiguate(["berlin", "germany"], small_kg)
        assert resolved[0] == berlin_de

    def test_validation(self, small_kg):
        service = ElasticLookup.build(small_kg)
        with pytest.raises(ValueError):
            DoSeRDisambiguator(service, candidate_k=0)
        with pytest.raises(ValueError):
            DoSeRDisambiguator(service, damping=1.0)
