"""Tests for the Katara data repairer."""

import pytest

from repro.annotation.katara import KataraRepairer
from repro.lookup.elastic import ElasticLookup
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table


@pytest.fixture(scope="module")
def repairer(small_kg):
    return KataraRepairer(ElasticLookup.build(small_kg))


class TestRepair:
    def test_recovers_masked_context_cell(self, repairer, small_kg):
        """Mask a capital; the country column + capital_of pattern recovers it."""
        rows, cea = [], {}
        pairs = [("germany", "berlin"), ("france", "paris"), ("spain", "madrid")]
        for r, (country, capital) in enumerate(pairs):
            rows.append([country, capital])
            cea[CellRef("t", r, 0)] = next(iter(small_kg.exact_lookup(country)))
            capital_ids = [
                eid for eid in small_kg.exact_lookup(capital)
                if "capital" in small_kg.entity(eid).type_ids
            ]
            cea[CellRef("t", r, 1)] = capital_ids[0]
        table = Table("t", ["country", "capital"], rows)
        ds = TabularDataset("x", [table], cea)
        masked, answers = ds.with_masked_cells(0.0)
        # Mask one capital manually for a deterministic scenario.
        target = CellRef("t", 0, 1)
        masked.table("t").set_cell(0, 1, "")
        predictions = repairer.repair(masked, small_kg)
        # capital_of runs capital -> country, so direction is "in".
        assert predictions[target] == cea[target]

    def test_recovers_masked_subject_cell(self, repairer, small_kg):
        rows, cea = [], {}
        pairs = [("germany", "berlin"), ("france", "paris"), ("spain", "madrid")]
        for r, (country, capital) in enumerate(pairs):
            rows.append([country, capital])
            cea[CellRef("t", r, 0)] = next(iter(small_kg.exact_lookup(country)))
            capital_ids = [
                eid for eid in small_kg.exact_lookup(capital)
                if "capital" in small_kg.entity(eid).type_ids
            ]
            cea[CellRef("t", r, 1)] = capital_ids[0]
        table = Table("t", ["country", "capital"], rows)
        ds = TabularDataset("x", [table], cea)
        ds.table("t").set_cell(1, 0, "")
        predictions = repairer.repair(ds, small_kg)
        assert predictions[CellRef("t", 1, 0)] == cea[CellRef("t", 1, 0)]

    def test_unrepairable_returns_none(self, repairer, small_kg):
        table = Table("t", ["a"], [[""]])
        germany = next(iter(small_kg.exact_lookup("germany")))
        ds = TabularDataset("x", [table], {CellRef("t", 0, 0): germany})
        predictions = repairer.repair(ds, small_kg)
        assert predictions[CellRef("t", 0, 0)] is None

    def test_no_masked_cells(self, repairer, small_kg, small_dataset):
        assert repairer.repair(small_dataset, small_kg) == {}

    def test_reasonable_recovery_on_benchmark(self, repairer, small_kg, small_dataset):
        masked, answers = small_dataset.with_masked_cells(0.1, seed=3)
        predictions = repairer.repair(masked, small_kg)
        truth = {ref: small_dataset.cea[ref] for ref in answers}
        correct = sum(
            1 for ref, t in truth.items() if predictions.get(ref) == t
        )
        assert correct / len(truth) > 0.4

    def test_validation(self, small_kg):
        with pytest.raises(ValueError):
            KataraRepairer(ElasticLookup.build(small_kg), candidate_k=0)
