"""Tests for annotation.base helpers (grouping, candidate plumbing)."""

import pytest

from repro.annotation.base import CeaAnnotator, group_cells_by_table
from repro.lookup.base import Candidate, LookupService
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table


class TopOneAnnotator(CeaAnnotator):
    """Minimal CEA system: picks the top candidate, no re-ranking."""

    name = "top1"

    def _disambiguate(self, kg, table_id, refs, texts, candidates):
        return {
            ref: (cands[0].entity_id if cands else None)
            for ref, cands in zip(refs, candidates)
        }


class FixedLookup(LookupService):
    """Always returns the same candidate; records batch sizes."""

    name = "fixed"

    def __init__(self):
        super().__init__()
        self.batch_sizes: list[int] = []

    def _lookup_batch(self, queries, k):
        self.batch_sizes.append(len(queries))
        return [[Candidate("Q1", 1.0)] for _ in queries]


@pytest.fixture
def two_table_dataset():
    tables = [
        Table("a", ["x"], [["foo"], [""]]),
        Table("b", ["x"], [["bar"]]),
    ]
    cea = {
        CellRef("a", 0, 0): "Q1",
        CellRef("a", 1, 0): "Q2",
        CellRef("b", 0, 0): "Q1",
    }
    return TabularDataset("two", tables, cea)


class TestGrouping:
    def test_group_cells_by_table(self, two_table_dataset):
        grouped = group_cells_by_table(two_table_dataset)
        assert set(grouped) == {"a", "b"}
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1


class TestCandidatePlumbing:
    def test_empty_cells_get_empty_candidates(self, two_table_dataset, tiny_kg):
        lookup = FixedLookup()
        annotator = TopOneAnnotator(lookup)
        predictions = annotator.annotate_cells(two_table_dataset, tiny_kg)
        # The empty cell ("a", 1, 0) must abstain; others get Q1.
        assert predictions[CellRef("a", 1, 0)] is None
        assert predictions[CellRef("a", 0, 0)] == "Q1"
        assert predictions[CellRef("b", 0, 0)] == "Q1"

    def test_lookup_batched_per_table(self, two_table_dataset, tiny_kg):
        lookup = FixedLookup()
        TopOneAnnotator(lookup).annotate_cells(two_table_dataset, tiny_kg)
        # One batch per table, empty cells excluded from the batch.
        assert sorted(lookup.batch_sizes) == [1, 1]

    def test_candidate_k_validated(self):
        with pytest.raises(ValueError):
            TopOneAnnotator(FixedLookup(), candidate_k=0)
