"""Tests for column-type annotation (annotate_column_types)."""

import pytest

from repro.annotation.base import annotate_column_types
from repro.annotation.mantistable import MantisTableAnnotator
from repro.evaluation.metrics import cta_f_score
from repro.lookup.elastic import ElasticLookup


class TestCta:
    def test_perfect_cea_gives_strong_cta(self, small_dataset, small_kg):
        """Feeding ground-truth CEA, CTA should recover (almost) all types."""
        perfect_cea = dict(small_dataset.cea)
        cta = annotate_column_types(small_dataset, small_kg, perfect_cea)
        score = cta_f_score(cta, small_dataset.cta, kg=small_kg)
        assert score.f_score > 0.85

    def test_specific_type_beats_ancestor(self, small_dataset, small_kg):
        """Columns of capitals must not be typed as 'place' or 'thing'."""
        perfect_cea = dict(small_dataset.cea)
        cta = annotate_column_types(small_dataset, small_kg, perfect_cea)
        for column, predicted in cta.items():
            if predicted is not None:
                assert predicted not in ("thing",), column

    def test_empty_cea_abstains(self, small_dataset, small_kg):
        cta = annotate_column_types(small_dataset, small_kg, {})
        assert all(v is None for v in cta.values())

    def test_none_predictions_skipped(self, small_dataset, small_kg):
        cea = {ref: None for ref in small_dataset.cea}
        cta = annotate_column_types(small_dataset, small_kg, cea)
        assert all(v is None for v in cta.values())

    def test_end_to_end_with_system(self, small_dataset, small_kg):
        annotator = MantisTableAnnotator(ElasticLookup.build(small_kg))
        cea = annotator.annotate_cells(small_dataset, small_kg)
        cta = annotate_column_types(small_dataset, small_kg, cea)
        score = cta_f_score(cta, small_dataset.cta, kg=small_kg)
        assert score.f_score > 0.7
