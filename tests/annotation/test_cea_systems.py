"""Tests for the three CEA systems (bbw, MantisTable, JenTab)."""

import pytest

from repro.annotation.bbw import BbwAnnotator
from repro.annotation.jentab import JenTabAnnotator
from repro.annotation.mantistable import MantisTableAnnotator
from repro.evaluation.metrics import cea_f_score
from repro.lookup.elastic import ElasticLookup


@pytest.fixture(scope="module")
def elastic(small_kg):
    return ElasticLookup.build(small_kg)


ALL_SYSTEMS = [BbwAnnotator, MantisTableAnnotator, JenTabAnnotator]


class TestAccuracyOnCleanData:
    @pytest.mark.parametrize("system_cls", ALL_SYSTEMS)
    def test_high_f_score(self, system_cls, elastic, small_dataset, small_kg):
        annotator = system_cls(elastic)
        predictions = annotator.annotate_cells(small_dataset, small_kg)
        score = cea_f_score(predictions, small_dataset.cea)
        assert score.f_score > 0.9, system_cls.name

    @pytest.mark.parametrize("system_cls", ALL_SYSTEMS)
    def test_all_cells_predicted(self, system_cls, elastic, small_dataset, small_kg):
        annotator = system_cls(elastic)
        predictions = annotator.annotate_cells(small_dataset, small_kg)
        assert set(predictions) == set(small_dataset.cea)


class TestRobustness:
    @pytest.mark.parametrize("system_cls", ALL_SYSTEMS)
    def test_empty_cells_abstain(self, system_cls, elastic, small_dataset, small_kg):
        masked, answers = small_dataset.with_masked_cells(0.2, seed=0)
        annotator = system_cls(elastic)
        predictions = annotator.annotate_cells(masked, small_kg)
        for ref in answers:
            assert predictions[ref] is None

    def test_invalid_candidate_k(self, elastic):
        with pytest.raises(ValueError):
            BbwAnnotator(elastic, candidate_k=0)


class TestContextSignals:
    def test_bbw_context_disambiguates_homonyms(self, small_kg, elastic):
        """Two cities labelled 'berlin' — row context (country) decides."""
        from repro.tables.dataset import TabularDataset
        from repro.tables.table import CellRef, Table

        berlin_de = None
        for eid in small_kg.exact_lookup("berlin"):
            entity = small_kg.entity(eid)
            if "capital" in entity.type_ids:
                berlin_de = eid
        if berlin_de is None:
            pytest.skip("no capital Berlin in this KG build")
        germany = next(iter(small_kg.exact_lookup("germany")))
        table = Table("t", ["city", "country"], [["berlin", "germany"]])
        ds = TabularDataset(
            "x",
            [table],
            {CellRef("t", 0, 0): berlin_de, CellRef("t", 0, 1): germany},
        )
        annotator = BbwAnnotator(elastic, context_weight=0.5)
        predictions = annotator.annotate_cells(ds, small_kg)
        assert predictions[CellRef("t", 0, 0)] == berlin_de

    def test_mantistable_type_weight_validation(self, elastic):
        with pytest.raises(ValueError):
            MantisTableAnnotator(elastic, type_weight=-1)

    def test_bbw_context_weight_validation(self, elastic):
        with pytest.raises(ValueError):
            BbwAnnotator(elastic, context_weight=-0.5)
