"""Runtime lock-order sanitizer tests, including static/dynamic agreement.

The cross-validation tests execute the REP703 fixtures with
``threading.Lock`` replaced by a tracked factory: the violating fixture
must record the same inversion the static rule flags, and the clean
fixture must record none.
"""

import threading

import pytest

from repro.testing.sanitizer import (
    LockOrderTracker,
    LockOrderViolation,
    TrackedLock,
    current_tracker,
    install,
    tracked_factory,
    uninstall,
)

from tests.analysis.fixtures import fixture_source


def make_locks(tracker, *names):
    return [TrackedLock(tracker, name) for name in names]


class TestTrackedLock:
    def test_behaves_like_a_lock(self):
        tracker = LockOrderTracker()
        (lock,) = make_locks(tracker, "L")
        assert not lock.locked()
        with lock:
            assert lock.locked()
            assert tracker.held() == ("L",)
        assert not lock.locked()
        assert tracker.held() == ()

    def test_nonblocking_failure_is_not_tracked(self):
        tracker = LockOrderTracker()
        (lock,) = make_locks(tracker, "L")
        lock.acquire()
        assert lock.acquire(blocking=False) is False
        assert tracker.held() == ("L",)
        lock.release()

    def test_nested_acquisition_records_an_edge(self):
        tracker = LockOrderTracker()
        a, b = make_locks(tracker, "A", "B")
        with a:
            with b:
                pass
        assert "B" in tracker.edges()["A"]
        assert tracker.violations() == []


class TestInversionDetection:
    def test_sequential_inversion_is_caught_on_one_thread(self):
        """No interleaving needed: A->B then B->A on one thread suffices."""
        tracker = LockOrderTracker()
        a, b = make_locks(tracker, "A", "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        violations = tracker.violations()
        assert len(violations) == 1
        assert "`A`" in violations[0] and "`B`" in violations[0]
        with pytest.raises(LockOrderViolation):
            tracker.check()

    def test_transitive_inversion_through_a_third_lock(self):
        tracker = LockOrderTracker()
        a, b, c = make_locks(tracker, "A", "B", "C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass  # closes A -> B -> C -> A
        assert len(tracker.violations()) == 1

    def test_consistent_order_is_clean(self):
        tracker = LockOrderTracker()
        a, b = make_locks(tracker, "A", "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        tracker.check()
        assert tracker.violations() == []

    def test_reset_forgets_history(self):
        tracker = LockOrderTracker()
        a, b = make_locks(tracker, "A", "B")
        with a:
            with b:
                pass
        tracker.reset()
        with b:
            with a:
                pass
        assert tracker.violations() == []


class TestCrossValidation:
    """The seeded REP703 fixtures must trip (or not trip) the sanitizer too."""

    def run_fixture(self, name):
        tracker = LockOrderTracker()
        namespace = {"threading": threading}
        source = fixture_source(name)
        exec(  # noqa: S102 - executing our own test fixture
            compile(source, f"<{name}>", "exec"),
            namespace,
        )
        # Rebind Lock so the fixture classes build tracked locks; each
        # __init__ line becomes one graph node, mirroring REP703's
        # module.Class.attr canonicalisation.
        namespace["threading"] = type(
            "T", (), {"Lock": staticmethod(tracked_factory(tracker))}
        )
        return tracker, namespace

    def test_violating_fixture_trips_the_sanitizer(self):
        tracker, ns = self.run_fixture("lockorder_violations.py")
        pair = ns["InvertedPair"]()
        pair.ab()
        pair.ba()
        assert len(tracker.violations()) == 1
        ledger = ns["Ledger"]()
        ledger.transfer(5)
        ledger.audit()
        assert len(tracker.violations()) == 2

    def test_clean_fixture_stays_quiet(self):
        tracker, ns = self.run_fixture("lockorder_clean.py")
        pair = ns["OrderedPair"]()
        pair.ab()
        pair.also_ab()
        ledger = ns["Ledger"]()
        ledger.transfer(5)
        ledger.audit()
        tracker.check()
        assert tracker.violations() == []


class TestFactoryAndInstall:
    def test_factory_names_locks_by_creation_site(self):
        tracker = LockOrderTracker()
        factory = tracked_factory(tracker)
        first = factory()
        second = factory()
        assert first.name.startswith("test_sanitizer.py:")
        assert second.name != first.name  # two call sites, two nodes

    def test_same_site_shares_a_node(self):
        tracker = LockOrderTracker()
        factory = tracked_factory(tracker)
        locks = [factory() for _ in range(2)]
        assert locks[0].name == locks[1].name

    def test_install_tracks_test_code_and_uninstall_restores(self):
        if current_tracker() is not None:
            pytest.skip("sanitizer installed session-wide (REPRO_SANITIZER=1)")
        assert current_tracker() is None
        tracker = install()
        try:
            assert current_tracker() is tracker
            assert install() is tracker  # idempotent
            lock = threading.Lock()  # created in a test file -> tracked
            assert isinstance(lock, TrackedLock)
            with lock:
                assert tracker.held() == (lock.name,)
        finally:
            uninstall()
        assert current_tracker() is None
        assert not isinstance(threading.Lock(), TrackedLock)
