"""Runtime array-contract validator (``REPRO_ARRAYCHECK=1`` half).

The static REP8xx pass and this validator share one grammar and one
dtype verdict table; the cross-validation test at the bottom executes
the seeded fixture drivers under a scoped tracker and asserts the rules
the validator records agree with the rules the static pass flags on the
same file — minus the two deliberately static-only cases (uncontracted
arithmetic and a missing-contract declaration, which no runtime wrapper
can observe).
"""

import contextlib

import numpy as np
import pytest

from repro.analysis import lint_source
from repro.utils import contracts
from repro.utils.contracts import (
    ContractViolation,
    array_contract,
    scoped_tracker,
)

from tests.analysis.fixtures import FIXTURES_DIR, fixture_source


@array_contract("(nq, d) f32, k: int -> (nq, k) f32")
def rank(queries, k):
    return np.ascontiguousarray(queries[:, :k])


@array_contract("ids: (n,) i64, offsets: (n,) i64 -> (n,) i64")
def remap(ids, offsets):
    return ids + offsets


def run_fixture(name):
    """Exec a fixture module and return its namespace."""
    source = fixture_source(name)
    namespace = {}
    exec(compile(source, f"<{name}>", "exec"), namespace)
    return namespace


class TestWrapper:
    def test_noop_when_uninstalled(self):
        # With no tracker installed the wrapper must not even inspect
        # arrays: a wrong-dtype call goes through silently.
        previous = contracts.current_tracker()
        contracts.uninstall()
        try:
            out = rank(np.zeros((2, 4)), 2)  # f64: would record otherwise
            assert out.dtype == np.float64
            assert contracts.current_tracker() is None
        finally:
            contracts._INSTALLED = previous

    def test_clean_call_records_nothing(self):
        with scoped_tracker() as tracker:
            out = rank(np.ones((3, 4), dtype=np.float32), 2)
        assert out.shape == (3, 2)
        assert tracker.violations() == []

    def test_dim_mismatch_records_rep801(self):
        with scoped_tracker() as tracker:
            with contextlib.suppress(IndexError):  # body slices 2-d
                rank(np.ones((8,), dtype=np.float32), 2)
        assert tracker.rules_seen() == {"REP801"}
        assert "declared 2-d" in tracker.violations()[0]

    def test_symbol_binding_across_parameters(self):
        with scoped_tracker() as tracker:
            with contextlib.suppress(ValueError):  # broadcast fails
                remap(
                    np.arange(4, dtype=np.int64),
                    np.arange(3, dtype=np.int64),
                )
        assert tracker.rules_seen() == {"REP801"}
        assert "already bound" in tracker.violations()[0]

    def test_dtype_violation_records_rep802(self):
        with scoped_tracker() as tracker:
            rank(np.ones((3, 4)), 2)  # float64
        assert "REP802" in tracker.rules_seen()

    def test_narrow_ids_record_rep804(self):
        with scoped_tracker() as tracker:
            remap(
                np.arange(4, dtype=np.int32), np.arange(4, dtype=np.int64)
            )
        assert "REP804" in tracker.rules_seen()

    def test_layout_violation_records_rep803(self):
        with scoped_tracker() as tracker:
            rank(np.asfortranarray(np.ones((3, 4), dtype=np.float32)), 2)
        assert "REP803" in tracker.rules_seen()

    def test_keyword_arguments_validated(self):
        with scoped_tracker() as tracker:
            rank(queries=np.ones((3, 4)), k=2)
        assert "REP802" in tracker.rules_seen()

    def test_return_contract_validated(self):
        @array_contract("(n,) f32 -> (n,) f32")
        def bad(x):
            return x.astype(np.float64)

        with scoped_tracker() as tracker:
            bad(np.zeros(3, dtype=np.float32))
        assert tracker.rules_seen() == {"REP802"}
        assert "return value" in tracker.violations()[0]

    def test_scalar_kinds_validated(self):
        with scoped_tracker() as tracker:
            with contextlib.suppress(TypeError):  # body slices with k
                rank(np.ones((3, 4), dtype=np.float32), "two")
        assert tracker.rules_seen() == {"REP802"}
        assert "'k'" in tracker.violations()[0]


class TestTracker:
    def test_check_raises_and_reset_clears(self):
        with scoped_tracker() as tracker:
            with contextlib.suppress(IndexError):
                rank(np.ones((8,), dtype=np.float32), 2)
            with pytest.raises(ContractViolation):
                tracker.check()
            tracker.reset()
            tracker.check()  # clean after reset
        assert tracker.violations() == []

    def test_scoped_tracker_restores_previous(self):
        outer = contracts.current_tracker()
        with scoped_tracker() as inner:
            assert contracts.current_tracker() is inner
            with scoped_tracker() as nested:
                assert contracts.current_tracker() is nested
            assert contracts.current_tracker() is inner
        assert contracts.current_tracker() is outer

    def test_install_is_idempotent(self):
        previous = contracts.current_tracker()
        try:
            first = contracts.install()
            second = contracts.install()
            assert first is second
        finally:
            contracts._INSTALLED = previous


# Drivers in arrays_violations.py that a runtime wrapper can observe,
# with the rule each must record.  ``remap_narrow`` (bare arithmetic)
# and ``PublicScanner`` (missing declaration) are static-only.
RUNTIME_DRIVERS = {
    "rank_flattened": "REP801",
    "rank_transposed": "REP801",
    "rank_upcast": "REP802",
    "rank_fortran": "REP803",
    "narrow_ids": "REP804",
}

STATIC_ONLY_RULES = {"REP805"}


class TestCrossValidation:
    """Static pass and runtime validator agree on the fixture pair."""

    def test_each_driver_trips_its_declared_rule(self):
        namespace = run_fixture("arrays_violations.py")
        for driver, rule in RUNTIME_DRIVERS.items():
            with scoped_tracker() as tracker:
                with contextlib.suppress(Exception):
                    namespace[driver]()
            assert rule in tracker.rules_seen(), (
                f"{driver} should record {rule}, "
                f"got {sorted(tracker.rules_seen())}"
            )

    def test_runtime_and_static_rules_agree(self):
        source = fixture_source("arrays_violations.py")
        static_rules = {
            f.rule
            for f in lint_source(
                source,
                path="repro/index/arrays_violations.py",
                select=["REP8"],
            )
        }
        namespace = run_fixture("arrays_violations.py")
        with scoped_tracker() as tracker:
            for driver in RUNTIME_DRIVERS:
                with contextlib.suppress(Exception):
                    namespace[driver]()
        runtime_rules = tracker.rules_seen()
        assert runtime_rules == {"REP801", "REP802", "REP803", "REP804"}
        # Every runtime-observable rule is also caught statically; the
        # static pass additionally sees the declaration-level rules.
        assert runtime_rules <= static_rules
        assert static_rules - runtime_rules == STATIC_ONLY_RULES

    def test_clean_fixture_silent_in_both_halves(self):
        source = fixture_source("arrays_clean.py")
        assert (
            lint_source(
                source,
                path="repro/index/arrays_clean.py",
                select=["REP8"],
            )
            == []
        )
        namespace = run_fixture("arrays_clean.py")
        with scoped_tracker() as tracker:
            for driver in ("rank_correct", "paired_correct", "remap_wide"):
                namespace[driver]()
        assert tracker.violations() == []

    def test_fixture_files_exist_for_ci(self):
        # The CI arraycheck step lints src/repro only; the fixtures live
        # under tests/ and must stay importable for this module.
        assert (FIXTURES_DIR / "arrays_violations.py").is_file()
        assert (FIXTURES_DIR / "arrays_clean.py").is_file()
