"""Tests for repro.testing.faults (FaultPlan grammar and hooks)."""

import time

import numpy as np
import pytest

from repro.testing.faults import FaultInjected, FaultPlan, FaultSpec, QueryPoison


class TestFaultSpec:
    def test_wildcards_match_everything(self):
        spec = FaultSpec(kind="raise")
        assert spec.matches(0, 0) and spec.matches(7, 99)

    def test_pinned_shard_and_call(self):
        spec = FaultSpec(kind="raise", shard=1, at_call=2)
        assert spec.matches(1, 2)
        assert not spec.matches(1, 3)
        assert not spec.matches(0, 2)

    def test_drop_matches_all_later_calls(self):
        spec = FaultSpec(kind="drop", shard=0, at_call=2)
        assert not spec.matches(0, 1)
        assert spec.matches(0, 2) and spec.matches(0, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", shard=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="delay", arg=-0.5)


class TestFaultPlanParse:
    def test_full_grammar(self):
        plan = FaultPlan.parse("s0:c2:raise, *:c1:delay:0.25, s3:*:drop")
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["raise", "delay", "drop"]
        assert plan.specs[0].shard == 0 and plan.specs[0].at_call == 2
        assert plan.specs[1].shard is None and plan.specs[1].arg == 0.25
        assert plan.specs[2].at_call is None

    @pytest.mark.parametrize(
        "bad",
        ["", "s0:c1", "x0:c1:raise", "s0:k1:raise", "s0:c1:explode"],
    )
    def test_rejects_malformed_clauses(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


class TestFaultPlanHooks:
    def test_before_counts_and_raises_once(self):
        plan = FaultPlan.parse("s0:c1:raise")
        plan.before(0)  # call 0: clean
        with pytest.raises(FaultInjected):
            plan.before(0)  # call 1: fault
        plan.before(0)  # call 2: clean again (not a drop)
        assert plan.calls(0) == 3
        assert plan.fired == 1

    def test_drop_keeps_failing(self):
        plan = FaultPlan.parse("s1:c0:drop")
        for _ in range(3):
            with pytest.raises(FaultInjected):
                plan.before(1)
        plan.before(0)  # other shards unaffected
        assert plan.fired == 3

    def test_delay_sleeps(self):
        plan = FaultPlan.parse("*:*:delay:0.03")
        started = time.monotonic()
        plan.before(0)
        assert time.monotonic() - started >= 0.025

    def test_transform_mispairs_distances(self):
        plan = FaultPlan.parse("s0:*:corrupt")
        plan.before(0)
        ids = np.array([[1, 2, 3]])
        distances = np.array([[1.0, 2.0, 3.0]])
        out_ids, out_d = plan.transform(0, ids, distances)
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_array_equal(out_d, [[3.0, 2.0, 1.0]])
        assert plan.fired == 1

    def test_transform_passthrough_for_other_shards(self):
        plan = FaultPlan.parse("s0:*:corrupt")
        plan.before(1)
        ids = np.array([[1]])
        distances = np.array([[1.0]])
        out_ids, out_d = plan.transform(1, ids, distances)
        assert out_ids is ids and out_d is distances

    def test_reset_zeroes_counters(self):
        plan = FaultPlan.parse("*:*:raise")
        with pytest.raises(FaultInjected):
            plan.before(0)
        plan.reset()
        assert plan.calls(0) == 0 and plan.fired == 0


class TestQueryPoison:
    def test_raises_only_when_poisoned_query_present(self):
        poison = QueryPoison(["bad"])
        poison(["good", "fine"])
        assert poison.fired == 0
        with pytest.raises(FaultInjected, match="bad"):
            poison(["good", "bad"])
        assert poison.fired == 1

    def test_delay_kind_stalls_without_raising(self):
        poison = QueryPoison(["slow"], kind="delay", delay=0.03)
        started = time.monotonic()
        poison(["slow"])
        assert time.monotonic() - started >= 0.025

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            QueryPoison(["q"], kind="corrupt")
