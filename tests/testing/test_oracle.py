"""Tests for repro.testing.oracle (reference k-NN and comparators)."""

import numpy as np
import pytest

from repro.testing.oracle import (
    assert_topk_agrees,
    assert_topk_equal,
    assert_valid_topk,
    brute_force_topk,
    exact_topk,
    recall_at_k,
)


class TestExactTopk:
    def test_ranks_by_distance_then_id(self):
        distances = np.array([[2.0, 1.0, 1.0, 3.0]])
        ids, d = exact_topk(distances, 3)
        np.testing.assert_array_equal(ids, [[1, 2, 0]])
        np.testing.assert_array_equal(d, [[1.0, 1.0, 2.0]])

    def test_pads_when_k_exceeds_ntotal(self):
        ids, d = exact_topk(np.array([[5.0]]), 3)
        np.testing.assert_array_equal(ids, [[0, -1, -1]])
        assert np.isinf(d[0, 1:]).all()

    def test_nan_ranks_last(self):
        distances = np.array([[np.nan, 1.0, 2.0]])
        ids, _ = exact_topk(distances, 3)
        np.testing.assert_array_equal(ids, [[1, 2, 0]])

    def test_rejects_bad_k_and_shape(self):
        with pytest.raises(ValueError):
            exact_topk(np.zeros((1, 3)), 0)
        with pytest.raises(ValueError):
            exact_topk(np.zeros(3), 1)


class TestBruteForce:
    def test_matches_hand_computed_l2(self):
        vectors = np.array([[0.0, 0.0], [3.0, 4.0]], dtype=np.float32)
        queries = np.array([[0.0, 0.0]], dtype=np.float32)
        ids, d = brute_force_topk(vectors, queries, 2)
        np.testing.assert_array_equal(ids, [[0, 1]])
        np.testing.assert_allclose(d, [[0.0, 25.0]])

    def test_ip_metric_negates_dot(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        queries = np.array([[2.0, 1.0]], dtype=np.float32)
        ids, d = brute_force_topk(vectors, queries, 2, metric="ip")
        np.testing.assert_array_equal(ids, [[0, 1]])
        np.testing.assert_allclose(d, [[-2.0, -1.0]])

    def test_empty_store_is_all_padding(self):
        ids, d = brute_force_topk(
            np.zeros((0, 4), dtype=np.float32),
            np.zeros((2, 4), dtype=np.float32),
            3,
        )
        assert (ids == -1).all() and np.isinf(d).all()

    def test_rejects_metric_and_dim_mismatch(self):
        with pytest.raises(ValueError):
            brute_force_topk(np.zeros((1, 2)), np.zeros((1, 2)), 1, metric="cos")
        with pytest.raises(ValueError):
            brute_force_topk(np.zeros((1, 2)), np.zeros((1, 3)), 1)


class TestRecall:
    def test_partial_overlap(self):
        got = np.array([[0, 1, 9]])
        want = np.array([[0, 1, 2]])
        assert recall_at_k(got, want) == pytest.approx(2 / 3)

    def test_padding_excluded_from_denominator(self):
        got = np.array([[0, -1, -1]])
        want = np.array([[0, -1, -1]])
        assert recall_at_k(got, want) == 1.0

    def test_all_padding_oracle_counts_as_found(self):
        assert recall_at_k(np.array([[-1]]), np.array([[-1]])) == 1.0


class TestAssertTopkEqual:
    def test_accepts_identical_with_nan(self):
        ids = np.array([[1, 2]])
        d = np.array([[1.0, np.nan]])
        assert_topk_equal((ids, d), (ids.copy(), d.copy()))

    def test_rejects_id_divergence_with_location(self):
        with pytest.raises(AssertionError, match="query 0 rank 1"):
            assert_topk_equal(
                (np.array([[1, 2]]), np.array([[1.0, 2.0]])),
                (np.array([[1, 3]]), np.array([[1.0, 2.0]])),
            )

    def test_rejects_distance_divergence(self):
        ids = np.array([[1]])
        with pytest.raises(AssertionError, match="distances diverge"):
            assert_topk_equal(
                (ids, np.array([[1.0]])), (ids, np.array([[1.0 + 1e-9]]))
            )


class TestAssertTopkAgrees:
    def test_permits_swap_within_tie_group(self):
        want = (np.array([[3, 5, 9]]), np.array([[1.0, 1.0, 2.0]]))
        got = (np.array([[5, 3, 9]]), np.array([[1.0, 1.0, 2.0]]))
        assert_topk_agrees(got, want)

    def test_rejects_swap_across_groups(self):
        want = (np.array([[3, 5]]), np.array([[1.0, 2.0]]))
        got = (np.array([[5, 3]]), np.array([[1.0, 2.0]]))
        with pytest.raises(AssertionError, match="beyond ties"):
            assert_topk_agrees(got, want)

    def test_rejects_misaligned_padding(self):
        want = (np.array([[3, -1]]), np.array([[1.0, np.inf]]))
        got = (np.array([[3, 4]]), np.array([[1.0, 9.0]]))
        with pytest.raises(AssertionError, match="padding"):
            assert_topk_agrees(got, want)

    def test_tolerates_ulp_distance_noise(self):
        want = (np.array([[3]]), np.array([[100.0]]))
        got = (np.array([[3]]), np.array([[100.0 * (1 + 1e-9)]]))
        assert_topk_agrees(got, want)


class TestAssertValidTopk:
    def _good(self):
        ids = np.array([[0, 2, -1]])
        d = np.array([[1.0, 2.0, np.inf]])
        return ids, d

    def test_accepts_well_formed(self):
        assert_valid_topk(self._good(), ntotal=5, k=3)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(AssertionError, match="duplicate"):
            assert_valid_topk(
                (np.array([[1, 1]]), np.array([[1.0, 1.0]])), 5, 2
            )

    def test_rejects_real_after_padding(self):
        with pytest.raises(AssertionError, match="after padding"):
            assert_valid_topk(
                (np.array([[-1, 1]]), np.array([[np.inf, 1.0]])), 5, 2
            )

    def test_rejects_unsorted_distances(self):
        with pytest.raises(AssertionError, match="not sorted"):
            assert_valid_topk(
                (np.array([[0, 1]]), np.array([[2.0, 1.0]])), 5, 2
            )

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(AssertionError, match="out of range"):
            assert_valid_topk(
                (np.array([[7]]), np.array([[1.0]])), ntotal=5, k=1
            )

    def test_rejects_finite_padding_distance(self):
        with pytest.raises(AssertionError, match="inf distance"):
            assert_valid_topk(
                (np.array([[0, -1]]), np.array([[1.0, 2.0]])), 5, 2
            )

    def test_nan_allowed_only_as_real_suffix(self):
        assert_valid_topk(
            (np.array([[0, 1]]), np.array([[1.0, np.nan]])), 5, 2
        )
        with pytest.raises(AssertionError, match="NaN"):
            assert_valid_topk(
                (np.array([[0, 1]]), np.array([[np.nan, 1.0]])), 5, 2
            )

    def test_accepts_search_result_objects(self):
        from repro.index.base import SearchResult

        ids, d = self._good()
        assert_valid_topk(SearchResult(ids=ids, distances=d), 5, 3)
