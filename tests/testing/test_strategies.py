"""Tests for repro.testing.strategies (generators, shrinking, replay)."""

import numpy as np
import pytest

from repro.testing.strategies import (
    CASE_ENV,
    SEED_ENV,
    GridCase,
    GridStrategy,
    LabelStrategy,
    PropertyFailure,
    StoreCase,
    TupleStrategy,
    VectorStoreStrategy,
    base_seed,
    case_rng,
    run_cases,
)


class TestSeeding:
    def test_case_rng_is_deterministic(self):
        a = case_rng(3, 7).normal(size=4)
        b = case_rng(3, 7).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_cases_are_independent_streams(self):
        assert not np.array_equal(
            case_rng(3, 7).normal(size=4), case_rng(3, 8).normal(size=4)
        )

    def test_base_seed_reads_env(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV, "42")
        assert base_seed() == 42
        monkeypatch.delenv(SEED_ENV)
        assert base_seed(default=5) == 5


class TestRunCases:
    def test_runs_requested_count(self):
        seen = []
        run_cases(seen.append, GridStrategy(), cases=9)
        assert len(seen) == 9

    def test_failure_carries_replay_line_and_shrinks(self):
        strategy = VectorStoreStrategy()

        def prop(case):
            assert len(case.vectors) < 2, "too many rows"

        with pytest.raises(PropertyFailure) as exc_info:
            run_cases(prop, strategy, cases=20, name="demo")
        message = str(exc_info.value)
        assert f"{SEED_ENV}=" in message and f"{CASE_ENV}=" in message
        assert "demo" in message
        # Greedy halving must reach a minimal still-failing store.
        assert len(exc_info.value.shrunk_case.vectors) == 2

    def test_case_env_pins_single_case(self, monkeypatch):
        monkeypatch.setenv(CASE_ENV, "5")
        seen = []
        run_cases(seen.append, GridStrategy(), cases=50)
        assert len(seen) == 1
        np.testing.assert_array_equal(
            [seen[0]], [GridStrategy().generate(case_rng(base_seed(), 5))]
        )

    def test_shrinker_ignores_non_assertion_errors(self):
        """A shrink candidate that crashes differently is not a
        simplification; the shrinker must skip it, not adopt or raise."""
        strategy = VectorStoreStrategy()

        def prop(case):
            if len(case.vectors) < 4:
                raise RuntimeError("different failure mode")
            raise AssertionError("always fails at full size")

        with pytest.raises(PropertyFailure) as exc_info:
            run_cases(prop, strategy, cases=1)
        assert len(exc_info.value.shrunk_case.vectors) >= 4


class TestVectorStoreStrategy:
    def test_generates_declared_shapes(self):
        strategy = VectorStoreStrategy(dims=(3,), max_rows=10, max_queries=2)
        for index in range(20):
            case = strategy.generate(case_rng(1, index))
            assert case.dim == 3
            assert 1 <= len(case.vectors) <= 10
            assert 1 <= len(case.queries) <= 2
            assert case.vectors.dtype == np.float32

    def test_conditioned_stores_stay_finite(self):
        strategy = VectorStoreStrategy(conditioned=True)
        for index in range(50):
            case = strategy.generate(case_rng(2, index))
            assert np.isfinite(case.vectors).all(), case.note

    def test_unconditioned_stores_emit_inf_eventually(self):
        strategy = VectorStoreStrategy(conditioned=False)
        notes = ",".join(
            strategy.generate(case_rng(3, i)).note for i in range(60)
        )
        assert "inf" in notes and "huge" in notes

    def test_shrink_yields_strictly_smaller_or_simpler(self):
        strategy = VectorStoreStrategy()
        case = StoreCase(
            vectors=np.ones((8, 2), dtype=np.float32),
            queries=np.ones((4, 2), dtype=np.float32),
        )
        for candidate in strategy.shrink(case):
            simpler = (
                len(candidate.vectors) < len(case.vectors)
                or len(candidate.queries) < len(case.queries)
                or not candidate.vectors.any()
                or not candidate.queries.any()
            )
            assert simpler


class TestLabelStrategy:
    def test_generates_label_and_aliases(self):
        strategy = LabelStrategy(num_aliases=3)
        label, aliases = strategy.generate(case_rng(4, 0))
        assert isinstance(label, str) and len(label) >= 1
        assert len(aliases) == 3

    def test_draws_non_ascii_alphabets(self):
        strategy = LabelStrategy()
        labels = [strategy.generate(case_rng(5, i))[0] for i in range(40)]
        assert any(not label.isascii() for label in labels)

    def test_shrink_halves_label_then_drops_aliases(self):
        strategy = LabelStrategy()
        candidates = list(strategy.shrink(("abcdef", ["x", "y"])))
        assert ("abc", ["x", "y"]) in candidates
        assert ("abcdef", ["x"]) in candidates


class TestGridAndTuple:
    def test_grid_shrinks_toward_unit_corner(self):
        strategy = GridStrategy()
        candidates = list(
            strategy.shrink(GridCase(k=10, block_size=64, num_shards=8))
        )
        assert GridCase(k=1, block_size=64, num_shards=8) in candidates
        assert list(strategy.shrink(GridCase(1, 1, 1))) == []

    def test_tuple_strategy_shrinks_one_slot_at_a_time(self):
        strategy = TupleStrategy(GridStrategy(), GridStrategy())
        case = (GridCase(5, 1, 1), GridCase(1, 3, 1))
        for candidate in strategy.shrink(case):
            changed = sum(a != b for a, b in zip(candidate, case))
            assert changed == 1

    def test_tuple_strategy_requires_strategies(self):
        with pytest.raises(ValueError):
            TupleStrategy()
