"""Unit tests for the repro.testing toolkit (oracle, strategies, faults)."""
