"""Dtype/layout coercion at the index ``add()``/``search()`` boundary.

The public entry points declare ``(..., d) num::any`` contracts: callers
may hand over float64, Fortran-ordered, or single-row 1-D arrays, and
:meth:`VectorIndex._check_vectors` coerces them to contiguous float32
exactly once at the boundary.  Strict f32/i64 contracts then hold on
everything behind it.  These tests pin the coercion down bit-for-bit:
every variant input is generated as float32 first and then upcast or
re-laid-out, so the coerced array is *identical* to the reference and
the search results must match exactly — any drift means a kernel saw
the uncoerced array.
"""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.ivfpq import IVFPQIndex
from repro.index.lsh import LSHIndex
from repro.index.pq import PQIndex
from repro.index.sharded import ShardedIndex

DIM = 8
N = 96
K = 5


def make_data(seed=0, n=N, d=DIM):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)).astype(np.float32)


def build(factory, data):
    """Train (if needed) and fill one index from float32-C ``data``."""
    index = factory()
    if not index.is_trained:
        index.train(data)
    index.add(data)
    return index


FACTORIES = {
    "flat": lambda: FlatIndex(DIM),
    "pq": lambda: PQIndex(DIM, m=2, nbits=4, seed=7),
    "ivf": lambda: IVFFlatIndex(DIM, nlist=8, nprobe=8, seed=7),
    "ivfpq": lambda: IVFPQIndex(
        DIM, nlist=4, m=2, nbits=4, nprobe=4, seed=7
    ),
    "lsh": lambda: LSHIndex(DIM, nbits=8, ntables=4, seed=7),
    "hnsw": lambda: HNSWIndex(DIM, m=4, ef_construction=16, seed=7),
    "sharded": lambda: ShardedIndex(DIM, 4, executor="inline"),
}

VARIANTS = {
    "float64": lambda a: a.astype(np.float64),  # exact upcast
    "fortran": np.asfortranarray,
    "f64_fortran": lambda a: np.asfortranarray(a.astype(np.float64)),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
class TestBoundaryEquivalence:
    def test_variant_add_matches_reference(self, name, variant):
        data = make_data()
        queries = make_data(seed=1, n=10)
        reference = build(FACTORIES[name], data)
        other = FACTORIES[name]()
        mutate = VARIANTS[variant]
        if not other.is_trained:
            other.train(mutate(data))
        other.add(mutate(data))
        expected = reference.search(queries, K)
        got = other.search(queries, K)
        np.testing.assert_array_equal(got.ids, expected.ids)
        np.testing.assert_array_equal(got.distances, expected.distances)

    def test_variant_queries_match_reference(self, name, variant):
        data = make_data()
        queries = make_data(seed=2, n=10)
        index = build(FACTORIES[name], data)
        expected = index.search(queries, K)
        got = index.search(VARIANTS[variant](queries), K)
        np.testing.assert_array_equal(got.ids, expected.ids)
        np.testing.assert_array_equal(got.distances, expected.distances)


class TestBoundaryShape:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_single_vector_promoted_to_row(self, name):
        data = make_data()
        index = build(FACTORIES[name], data)
        expected = index.search(data[:1], K)
        got = index.search(data[0], K)  # 1-D: one query row
        np.testing.assert_array_equal(got.ids, expected.ids)
        np.testing.assert_array_equal(got.distances, expected.distances)
        assert got.ids.shape == (1, K)

    def test_ids_are_int64_after_f64_add(self):
        data = make_data(n=32)
        index = FlatIndex(DIM)
        index.add(data.astype(np.float64))
        result = index.search(data[:4].astype(np.float64), K)
        assert result.ids.dtype == np.int64
        assert np.issubdtype(result.distances.dtype, np.floating)

    def test_storage_coerced_to_float32(self):
        # reconstruct() exposes the stored row: an f64 add must land as
        # the bit-identical f32 row, not a silently-kept f64 copy.
        data = make_data(n=16)
        index = FlatIndex(DIM)
        index.add(data.astype(np.float64))
        row = index.reconstruct(3)
        assert row.dtype == np.float32
        np.testing.assert_array_equal(row, data[3])

    def test_wrong_width_still_rejected(self):
        index = FlatIndex(DIM)
        with pytest.raises(ValueError):
            index.add(np.zeros((4, DIM + 1), dtype=np.float64))
        index.add(make_data(n=8))
        with pytest.raises(ValueError):
            index.search(np.zeros((2, DIM - 1)), 2)
