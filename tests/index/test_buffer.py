"""Tests for repro.index.buffer (amortized-growth vector storage)."""

import numpy as np
import pytest

from repro.index.buffer import GrowBuffer
from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex


class TestGrowBuffer:
    def test_starts_empty(self):
        buf = GrowBuffer(4, np.float32)
        assert len(buf) == 0
        assert buf.view.shape == (0, 4)
        assert buf.nbytes() == 0

    def test_append_and_view(self):
        buf = GrowBuffer(3, np.float32)
        rows = np.arange(6, dtype=np.float32).reshape(2, 3)
        buf.append(rows)
        np.testing.assert_array_equal(buf.view, rows)
        assert buf.nbytes() == 2 * 3 * 4

    def test_capacity_doubles(self):
        buf = GrowBuffer(1, np.float32)
        caps = set()
        for _ in range(100):
            buf.append(np.zeros((1, 1), dtype=np.float32))
            caps.add(buf.capacity)
        assert len(buf) == 100
        # Doubling growth reallocates O(log n) times, not O(n).
        assert len(caps) <= 8

    def test_view_contents_survive_growth(self):
        buf = GrowBuffer(2, np.int64)
        expected = []
        for i in range(50):
            row = np.array([[i, -i]], dtype=np.int64)
            buf.append(row)
            expected.append(row)
        np.testing.assert_array_equal(buf.view, np.concatenate(expected))

    def test_empty_append_is_noop(self):
        buf = GrowBuffer(4, np.float32)
        buf.append(np.empty((0, 4), dtype=np.float32))
        assert len(buf) == 0


class TestManySmallAdds:
    """Satellite: per-call concatenate made incremental add O(n^2)."""

    @pytest.mark.parametrize("chunk", [1, 3])
    def test_flat_many_small_adds_match_one_big_add(self, chunk):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(300, 8)).astype(np.float32)
        queries = rng.normal(size=(4, 8)).astype(np.float32)
        one_shot = FlatIndex(8)
        one_shot.add(data)
        incremental = FlatIndex(8)
        for start in range(0, len(data), chunk):
            incremental.add(data[start : start + chunk])
        assert incremental.ntotal == 300
        want = one_shot.search(queries, 10)
        got = incremental.search(queries, 10)
        assert got.ids.tobytes() == want.ids.tobytes()
        assert got.distances.tobytes() == want.distances.tobytes()

    def test_pq_many_small_adds_match_one_big_add(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(300, 8)).astype(np.float32)
        queries = rng.normal(size=(4, 8)).astype(np.float32)
        one_shot = PQIndex(8, m=2, nbits=4, seed=3)
        one_shot.train(data)
        one_shot.add(data)
        incremental = PQIndex(8, m=2, nbits=4, seed=3)
        incremental.train(data)
        for start in range(0, len(data), 1):
            incremental.add(data[start : start + 1])
        want = one_shot.search(queries, 10)
        got = incremental.search(queries, 10)
        assert got.ids.tobytes() == want.ids.tobytes()

    def test_reallocation_count_is_logarithmic(self):
        """1000 single-row adds must not reallocate per add."""
        index = FlatIndex(4)
        grows = 0
        last_cap = index._store.capacity
        for _ in range(1000):
            index.add(np.zeros((1, 4), dtype=np.float32))
            if index._store.capacity != last_cap:
                grows += 1
                last_cap = index._store.capacity
        assert grows <= 10
