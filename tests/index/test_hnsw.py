"""Tests for the HNSW graph index."""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex


def clustered_data(n=400, d=16, n_clusters=8, seed=0):
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(n_clusters, d)) * 5
    assignments = rng.integers(0, n_clusters, size=n)
    return (centres[assignments] + rng.normal(size=(n, d)) * 0.3).astype(np.float32)


class TestConstruction:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            HNSWIndex(0)
        with pytest.raises(ValueError):
            HNSWIndex(8, m=1)
        with pytest.raises(ValueError):
            HNSWIndex(8, ef_construction=0)

    def test_ntotal(self):
        index = HNSWIndex(8, seed=0)
        index.add(np.zeros((5, 8), dtype=np.float32))
        assert index.ntotal == 5

    def test_incremental_adds(self):
        data = clustered_data(n=60, d=8)
        index = HNSWIndex(8, seed=0)
        index.add(data[:30])
        index.add(data[30:])
        assert index.ntotal == 60


class TestSearch:
    def test_empty_index(self):
        index = HNSWIndex(8, seed=0)
        result = index.search(np.zeros((1, 8), dtype=np.float32), 3)
        assert (result.ids == -1).all()

    def test_self_query_found(self):
        data = clustered_data(n=200)
        index = HNSWIndex(16, seed=0)
        index.add(data)
        result = index.search(data[:20], 1)
        hits = (result.ids[:, 0] == np.arange(20)).mean()
        assert hits > 0.9

    def test_recall_vs_exact(self):
        data = clustered_data(n=400)
        index = HNSWIndex(16, m=8, ef_search=48, seed=0)
        index.add(data)
        flat = FlatIndex(16)
        flat.add(data)
        queries = data[:50] + 0.05 * np.random.default_rng(1).normal(
            size=(50, 16)
        ).astype(np.float32)
        approx = index.search(queries, 10)
        exact = flat.search(queries, 10)
        overlap = np.mean([
            len(set(a.tolist()) & set(e.tolist())) / 10
            for a, e in zip(approx.ids, exact.ids)
        ])
        assert overlap > 0.8

    def test_larger_ef_improves_recall(self):
        data = clustered_data(n=400, seed=2)
        index = HNSWIndex(16, m=6, seed=0)
        index.add(data)
        flat = FlatIndex(16)
        flat.add(data)
        queries = data[:40]
        exact = flat.search(queries, 10)
        def recall(ef):
            approx = index.search(queries, 10, ef=ef)
            return np.mean([
                len(set(a.tolist()) & set(e.tolist())) / 10
                for a, e in zip(approx.ids, exact.ids)
            ])
        assert recall(128) >= recall(10) - 0.02

    def test_distances_sorted(self):
        data = clustered_data(n=100)
        index = HNSWIndex(16, seed=0)
        index.add(data)
        result = index.search(data[:5], 8)
        for row in result.distances:
            finite = row[np.isfinite(row)]
            assert (np.diff(finite) >= -1e-9).all()

    def test_deterministic_given_seed(self):
        data = clustered_data(n=150)
        def build():
            index = HNSWIndex(16, seed=5)
            index.add(data)
            return index.search(data[:10], 5).ids
        np.testing.assert_array_equal(build(), build())

    def test_memory_accounts_links(self):
        data = clustered_data(n=100)
        index = HNSWIndex(16, seed=0)
        index.add(data)
        assert index.memory_bytes() > data.nbytes
