"""Tests for repro.index.shm (shared-memory segment ownership + leaks)."""

import numpy as np
import pytest

from repro.index.shm import (
    SEGMENT_PREFIX,
    AttachedSegments,
    ShmArraySpec,
    ShmRegistry,
    attach,
    owned_segment_names,
)


@pytest.fixture(autouse=True)
def no_preexisting_segments():
    """Every test starts and must end with a clean /dev/shm namespace."""
    before = owned_segment_names()
    assert before == [], f"stale segments from another test: {before}"
    yield
    after = owned_segment_names()
    assert after == [], f"leaked segments: {after}"


class TestShmArraySpec:
    def test_nbytes_matches_numpy(self):
        spec = ShmArraySpec(name="x", shape=(7, 3), dtype="<f4")
        assert spec.nbytes() == 7 * 3 * 4

    def test_pickles_roundtrip(self):
        import pickle

        spec = ShmArraySpec(name="seg", shape=(2, 5), dtype="|u1")
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestShmRegistry:
    def test_share_and_view_roundtrip(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal((11, 4)).astype(np.float32)
        with ShmRegistry() as registry:
            spec = registry.share(array)
            assert spec.shape == (11, 4)
            assert spec.name.startswith(SEGMENT_PREFIX)
            view = registry.view(spec)
            np.testing.assert_array_equal(view, array)
            assert not view.flags.writeable

    def test_share_copies_not_aliases(self):
        array = np.ones((3, 3), dtype=np.float64)
        with ShmRegistry() as registry:
            spec = registry.share(array)
            array[:] = 7.0
            assert float(registry.view(spec)[0, 0]) == 1.0

    def test_close_unlinks_everything(self):
        registry = ShmRegistry()
        for _ in range(3):
            registry.share(np.zeros((4, 2), dtype=np.float32))
        assert len(owned_segment_names()) == 3
        registry.close()
        assert owned_segment_names() == []
        assert registry.closed

    def test_close_is_idempotent(self):
        registry = ShmRegistry()
        registry.share(np.zeros((2, 2), dtype=np.float32))
        registry.close()
        registry.close()
        assert len(registry) == 0

    def test_share_after_close_raises(self):
        registry = ShmRegistry()
        registry.close()
        with pytest.raises(RuntimeError):
            registry.share(np.zeros((1, 1), dtype=np.float32))

    def test_zero_size_array_is_mappable(self):
        with ShmRegistry() as registry:
            spec = registry.share(np.empty((0, 8), dtype=np.float32))
            assert registry.view(spec).shape == (0, 8)

    def test_total_bytes_counts_segments(self):
        with ShmRegistry() as registry:
            registry.share(np.zeros((10, 4), dtype=np.float32))
            assert registry.total_bytes() >= 10 * 4 * 4

    def test_names_are_unique(self):
        with ShmRegistry() as registry:
            names = {
                registry.share(np.zeros((1, 1), dtype=np.uint8)).name
                for _ in range(8)
            }
            assert len(names) == 8


class TestAttach:
    def test_attach_sees_owner_data_readonly(self):
        array = np.arange(12, dtype=np.int64).reshape(3, 4)
        with ShmRegistry() as registry:
            spec = registry.share(array)
            view, holder = attach(spec)
            try:
                np.testing.assert_array_equal(view, array)
                with pytest.raises(ValueError):
                    view[0, 0] = 99
            finally:
                holder.close()

    def test_close_detaches_without_unlinking(self):
        with ShmRegistry() as registry:
            spec = registry.share(np.ones((2, 2), dtype=np.float32))
            holder = AttachedSegments()
            holder.attach(spec)
            holder.close()
            holder.close()  # idempotent
            # The owner still reads its segment after the attach dies.
            assert float(registry.view(spec)[0, 0]) == 1.0

    def test_attach_unknown_segment_raises(self):
        missing = ShmArraySpec(
            name=f"{SEGMENT_PREFIX}-0-0-deadbeef", shape=(1,), dtype="<f4"
        )
        with pytest.raises(FileNotFoundError):
            attach(missing)
