"""Tests for the IVF indexes (ivf.py and ivfpq.py)."""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.ivfpq import IVFPQIndex


def clustered_data(n=500, d=16, n_clusters=10, seed=0):
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(n_clusters, d)) * 6
    assignments = rng.integers(0, n_clusters, size=n)
    return (centres[assignments] + rng.normal(size=(n, d)) * 0.4).astype(np.float32)


def recall_vs_flat(index, data, queries, k=10):
    flat = FlatIndex(data.shape[1])
    flat.add(data)
    approx = index.search(queries, k)
    exact = flat.search(queries, k)
    return np.mean([
        len(set(a.tolist()) & set(e.tolist())) / k
        for a, e in zip(approx.ids, exact.ids)
    ])


class TestIVFFlat:
    def test_requires_training(self):
        index = IVFFlatIndex(8, nlist=4, nprobe=2)
        with pytest.raises(RuntimeError):
            index.add(np.zeros((1, 8), dtype=np.float32))
        with pytest.raises(RuntimeError):
            index.search(np.zeros((1, 8), dtype=np.float32), 1)

    def test_full_probe_matches_exact(self):
        """nprobe == nlist degenerates to exact search."""
        data = clustered_data()
        index = IVFFlatIndex(16, nlist=8, nprobe=8, seed=0)
        index.train(data)
        index.add(data)
        assert recall_vs_flat(index, data, data[:30]) == 1.0

    def test_recall_increases_with_nprobe(self):
        data = clustered_data(n=800)
        index = IVFFlatIndex(16, nlist=32, nprobe=1, seed=0)
        index.train(data)
        index.add(data)
        queries = data[:50]
        flat = FlatIndex(16)
        flat.add(data)
        exact = flat.search(queries, 10)
        def recall(nprobe):
            approx = index.search(queries, 10, nprobe=nprobe)
            return np.mean([
                len(set(a.tolist()) & set(e.tolist())) / 10
                for a, e in zip(approx.ids, exact.ids)
            ])
        assert recall(16) >= recall(1)
        assert recall(32) > 0.95

    def test_nprobe_validation(self):
        index = IVFFlatIndex(8, nlist=4, nprobe=2, seed=0)
        index.train(clustered_data(d=8))
        with pytest.raises(ValueError):
            index.search(np.zeros((1, 8), dtype=np.float32), 1, nprobe=99)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            IVFFlatIndex(8, nlist=4, nprobe=5)
        with pytest.raises(ValueError):
            IVFFlatIndex(0)

    def test_empty_search(self):
        index = IVFFlatIndex(8, nlist=4, nprobe=2, seed=0)
        index.train(clustered_data(d=8))
        result = index.search(np.zeros((1, 8), dtype=np.float32), 3)
        assert (result.ids == -1).all()


class TestIVFPQ:
    def test_requires_training(self):
        index = IVFPQIndex(8, nlist=4, m=2, nprobe=2)
        with pytest.raises(RuntimeError):
            index.add(np.zeros((1, 8), dtype=np.float32))

    def test_decent_recall_on_clusters(self):
        data = clustered_data(n=600)
        index = IVFPQIndex(16, nlist=8, m=4, nprobe=4, seed=0)
        index.train(data)
        index.add(data)
        assert recall_vs_flat(index, data, data[:30]) > 0.5

    def test_ids_are_global(self):
        data = clustered_data(n=100)
        index = IVFPQIndex(16, nlist=4, m=4, nprobe=4, seed=0)
        index.train(data)
        index.add(data)
        result = index.search(data[:5], 3)
        valid = result.ids[result.ids >= 0]
        assert valid.max() < 100

    def test_memory_smaller_than_flat(self):
        data = clustered_data(n=500, d=16)
        index = IVFPQIndex(16, nlist=8, m=4, seed=0)
        index.train(data)
        index.add(data)
        flat = FlatIndex(16)
        flat.add(data)
        # Codes themselves are 4 bytes vs 64 bytes per vector.
        assert index.ntotal * index.pq.m * 16 == flat.memory_bytes()
