"""Tests for repro.index.lsh."""

import numpy as np
import pytest

from repro.index.lsh import LSHIndex


def data_with_near_duplicates(n=300, d=16, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, d)).astype(np.float32)
    return base


class TestLSHIndex:
    def test_finds_exact_duplicates(self):
        data = data_with_near_duplicates()
        index = LSHIndex(16, nbits=12, ntables=6, seed=0)
        index.add(data)
        result = index.search(data[:20], 1)
        # A vector always collides with itself in every table.
        np.testing.assert_array_equal(result.ids[:, 0], np.arange(20))

    def test_near_neighbours_usually_found(self):
        data = data_with_near_duplicates()
        index = LSHIndex(16, nbits=10, ntables=8, seed=0)
        index.add(data)
        queries = data[:50] + 0.01 * np.random.default_rng(1).normal(
            size=(50, 16)
        ).astype(np.float32)
        result = index.search(queries, 5)
        hits = sum(1 for qi in range(50) if qi in result.ids[qi])
        assert hits >= 40

    def test_candidates_only_from_colliding_buckets(self):
        """Orthogonal query far from all data may return nothing."""
        index = LSHIndex(4, nbits=16, ntables=1, seed=0)
        index.add(np.eye(4, dtype=np.float32))
        result = index.search(-np.ones((1, 4), dtype=np.float32) * 100, 2)
        # Either padding or real ids; shape is stable regardless.
        assert result.ids.shape == (1, 2)

    def test_empty_index(self):
        index = LSHIndex(8)
        result = index.search(np.zeros((1, 8), dtype=np.float32), 3)
        assert (result.ids == -1).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LSHIndex(0)
        with pytest.raises(ValueError):
            LSHIndex(8, nbits=0)
        with pytest.raises(ValueError):
            LSHIndex(8, ntables=0)

    def test_deterministic_given_seed(self):
        data = data_with_near_duplicates(n=100)
        def run():
            index = LSHIndex(16, seed=3)
            index.add(data)
            return index.search(data[:5], 3).ids
        np.testing.assert_array_equal(run(), run())

    def test_memory_accounts_buckets(self):
        data = data_with_near_duplicates(n=50)
        index = LSHIndex(16, seed=0)
        before = index.memory_bytes()
        index.add(data)
        assert index.memory_bytes() > before
