"""Tests for the VectorIndex base plumbing and SearchResult."""

import numpy as np
import pytest

from repro.index.base import SearchResult, VectorIndex
from repro.index.flat import FlatIndex


class TestSearchResult:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SearchResult(
                ids=np.zeros((2, 3), dtype=np.int64),
                distances=np.zeros((2, 4)),
            )

    def test_frozen(self):
        result = SearchResult(
            ids=np.zeros((1, 1), dtype=np.int64), distances=np.zeros((1, 1))
        )
        with pytest.raises(AttributeError):
            result.ids = np.ones((1, 1), dtype=np.int64)


class TestCheckVectors:
    def test_promotes_1d_to_2d(self):
        index = FlatIndex(4)
        checked = index._check_vectors(np.zeros(4, dtype=np.float32), "v")
        assert checked.shape == (1, 4)

    def test_casts_dtype(self):
        index = FlatIndex(4)
        checked = index._check_vectors(np.zeros((2, 4), dtype=np.float64), "v")
        assert checked.dtype == np.float32

    def test_wrong_dim_rejected_with_context(self):
        index = FlatIndex(4)
        with pytest.raises(ValueError, match="queries"):
            index._check_vectors(np.zeros((2, 5), dtype=np.float32), "queries")

    def test_abstract_methods(self):
        base = VectorIndex()
        base.dim = 4
        with pytest.raises(NotImplementedError):
            base.add(np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(NotImplementedError):
            base.search(np.zeros((1, 4), dtype=np.float32), 1)
        with pytest.raises(NotImplementedError):
            base.memory_bytes()
        base.train(np.zeros((1, 4), dtype=np.float32))  # default: no-op
