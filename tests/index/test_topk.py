"""Tests for repro.index.topk (blockwise streaming top-k kernel)."""

import tracemalloc

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex
from repro.index.topk import (
    DEFAULT_BLOCK_SIZE,
    block_topk,
    blockwise_topk,
    merge_topk,
)


def brute_rank(distances, k):
    """Reference (distance, id) ranking over a full distance matrix."""
    nq, n = distances.shape
    ids = np.broadcast_to(np.arange(n, dtype=np.int64), (nq, n))
    order = np.lexsort((ids, distances), axis=1)[:, :k]
    out_ids = np.take_along_axis(np.ascontiguousarray(ids), order, axis=1)
    out_d = np.take_along_axis(distances, order, axis=1)
    if k > n:
        pad = k - n
        out_ids = np.pad(out_ids, ((0, 0), (0, pad)), constant_values=-1)
        out_d = np.pad(out_d, ((0, 0), (0, pad)), constant_values=np.inf)
    return out_ids, out_d


class TestBlockTopk:
    def test_selects_smallest(self):
        d = np.array([[3.0, 1.0, 2.0, 0.5]])
        ids, dist = block_topk(d, 2)
        np.testing.assert_array_equal(ids, [[3, 1]])
        np.testing.assert_allclose(dist, [[0.5, 1.0]])

    def test_id_offset_shifts_ids(self):
        d = np.array([[3.0, 1.0]])
        ids, _ = block_topk(d, 1, id_offset=10)
        np.testing.assert_array_equal(ids, [[11]])

    def test_pads_when_k_exceeds_width(self):
        d = np.array([[2.0, 1.0]])
        ids, dist = block_topk(d, 4)
        np.testing.assert_array_equal(ids, [[1, 0, -1, -1]])
        assert np.isinf(dist[0, 2:]).all()

    def test_ties_broken_by_id(self):
        d = np.zeros((1, 5))
        ids, _ = block_topk(d, 3)
        np.testing.assert_array_equal(ids, [[0, 1, 2]])


class TestMergeTopk:
    def test_merges_two_sorted_runs(self):
        ids_a = np.array([[0, 2]], dtype=np.int64)
        d_a = np.array([[1.0, 3.0]])
        ids_b = np.array([[5, 7]], dtype=np.int64)
        d_b = np.array([[2.0, 4.0]])
        ids, dist = merge_topk(ids_a, d_a, ids_b, d_b, 3)
        np.testing.assert_array_equal(ids, [[0, 5, 2]])
        np.testing.assert_allclose(dist, [[1.0, 2.0, 3.0]])

    def test_padding_sorts_last(self):
        ids_a = np.array([[-1, -1]], dtype=np.int64)
        d_a = np.full((1, 2), np.inf)
        ids_b = np.array([[4, -1]], dtype=np.int64)
        d_b = np.array([[0.5, np.inf]])
        ids, _ = merge_topk(ids_a, d_a, ids_b, d_b, 2)
        np.testing.assert_array_equal(ids, [[4, -1]])

    def test_tie_prefers_lower_id(self):
        ids_a = np.array([[9]], dtype=np.int64)
        ids_b = np.array([[3]], dtype=np.int64)
        d = np.array([[1.0]])
        ids, _ = merge_topk(ids_a, d, ids_b, d, 1)
        np.testing.assert_array_equal(ids, [[3]])


class TestBlockwiseTopk:
    def run_blockwise(self, distances, k, block):
        def score_block(start, stop):
            return distances[:, start:stop]

        return blockwise_topk(
            score_block,
            distances.shape[1],
            k,
            num_queries=distances.shape[0],
            block_size=block,
        )

    @pytest.mark.parametrize("block", [1, 7, 100, 4096])
    def test_matches_full_ranking_for_any_block_size(self, block):
        rng = np.random.default_rng(0)
        distances = rng.random((6, 100))
        want_ids, want_d = brute_rank(distances, 10)
        ids, dist = self.run_blockwise(distances, 10, block)
        np.testing.assert_array_equal(ids, want_ids)
        np.testing.assert_array_equal(dist, want_d)

    @pytest.mark.parametrize("block", [1, 7, 100, 4096])
    def test_bit_identical_across_block_sizes(self, block):
        """Every block size must give byte-for-byte the same answer."""
        rng = np.random.default_rng(4)
        distances = rng.random((3, 57))
        ref_ids, ref_d = self.run_blockwise(distances, 5, DEFAULT_BLOCK_SIZE)
        ids, dist = self.run_blockwise(distances, 5, block)
        assert ids.tobytes() == ref_ids.tobytes()
        assert dist.tobytes() == ref_d.tobytes()

    def test_empty_store_pads(self):
        ids, dist = blockwise_topk(
            lambda s, e: np.empty((2, 0)), 0, 3, num_queries=2
        )
        assert ids.shape == (2, 3)
        assert (ids == -1).all()
        assert np.isinf(dist).all()

    def test_never_scores_more_than_block(self):
        widths = []

        def score_block(start, stop):
            widths.append(stop - start)
            return np.zeros((2, stop - start))

        blockwise_topk(score_block, 1000, 4, num_queries=2, block_size=64)
        assert widths, "score_block never called"
        assert max(widths) <= 64


class TestStreamingMemory:
    def test_flat_search_never_materializes_full_matrix(self):
        """Peak allocation stays O(nq x block), not O(nq x ntotal)."""
        n, d, nq, block = 20000, 16, 8, 512
        rng = np.random.default_rng(1)
        index = FlatIndex(d, block_size=block)
        index.add(rng.normal(size=(n, d)).astype(np.float32))
        queries = rng.normal(size=(nq, d)).astype(np.float32)
        index.search(queries, 5)  # warm up caches/pools
        tracemalloc.start()
        index.search(queries, 5)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        full_matrix = nq * n * 8  # float64 (nq, ntotal) scores
        assert peak < full_matrix / 2, (
            f"peak {peak}B suggests a full (nq, ntotal) materialization "
            f"({full_matrix}B)"
        )

    def test_pq_search_never_materializes_full_matrix(self):
        n, d, nq, block = 20000, 16, 8, 512
        rng = np.random.default_rng(2)
        data = rng.normal(size=(n, d)).astype(np.float32)
        index = PQIndex(d, m=4, nbits=4, seed=0, block_size=block)
        index.train(data[:2000])
        index.add(data)
        queries = rng.normal(size=(nq, d)).astype(np.float32)
        index.search(queries, 5)
        tracemalloc.start()
        index.search(queries, 5)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        full_matrix = nq * n * 8
        assert peak < full_matrix / 2

    @pytest.mark.parametrize("block", [1, 7, 4096])
    def test_flat_block_size_equivalence(self, block):
        """Blockwise flat scans rank identically to the one-shot scan.

        Ids are bit-identical; distances are allowed ULP-level wobble
        because BLAS picks different gemm kernels per block width.
        """
        rng = np.random.default_rng(3)
        n = 123
        data = rng.normal(size=(n, 8)).astype(np.float32)
        queries = rng.normal(size=(5, 8)).astype(np.float32)
        index = FlatIndex(8)
        index.add(data)
        ref = index.search(queries, 10, block_size=n)
        got = index.search(queries, 10, block_size=block)
        assert got.ids.tobytes() == ref.ids.tobytes()
        np.testing.assert_allclose(got.distances, ref.distances, rtol=1e-12)


class TestPadRankingRegression:
    """Regressions for two selection bugs found by the repro.testing
    differential harness (PR 5)."""

    def test_padding_never_evicts_nonfinite_real_candidates(self):
        """A real neighbour whose score is NaN (inf - inf in the expansion
        kernel) must survive a merge against -1/inf padding.

        Before the pad-last lexsort key, the sharded path dropped real id
        1 here: its NaN distance sorted *after* the other shard's inf
        padding, returning [0, 2, -1, -1, -1] instead of keeping all
        three stored rows.
        """
        ids_a = np.array([[0, 1, -1, -1, -1]], dtype=np.int64)
        d_a = np.array([[1.0, np.nan, np.inf, np.inf, np.inf]])
        ids_b = np.array([[2, -1, -1, -1, -1]], dtype=np.int64)
        d_b = np.array([[2.0, np.inf, np.inf, np.inf, np.inf]])
        ids, d = merge_topk(ids_a, d_a, ids_b, d_b, 5)
        np.testing.assert_array_equal(ids, [[0, 2, 1, -1, -1]])
        assert np.isnan(d[0, 2])
        assert np.isinf(d[0, 3:]).all()

    def test_real_inf_distance_outranks_padding(self):
        ids_a = np.array([[3, -1]], dtype=np.int64)
        d_a = np.array([[np.inf, np.inf]])
        ids_b = np.array([[-1, -1]], dtype=np.int64)
        d_b = np.array([[np.inf, np.inf]])
        ids, _ = merge_topk(ids_a, d_a, ids_b, d_b, 2)
        np.testing.assert_array_equal(ids, [[3, -1]])

    @pytest.mark.filterwarnings(
        "ignore:invalid value encountered:RuntimeWarning"
    )
    def test_sharded_inf_store_keeps_every_row(self):
        """End-to-end pin of the original failure: a 2-shard store with an
        inf-magnitude row and k > ntotal must return all real ids, in the
        same order as the unsharded scan."""
        from repro.index.sharded import ShardedIndex

        vectors = np.array(
            [[1.0, 0.0], [np.inf, 0.0], [2.0, 0.0]], dtype=np.float32
        )
        queries = np.zeros((1, 2), dtype=np.float32)
        flat = FlatIndex(2)
        flat.add(vectors)
        sharded = ShardedIndex(2, 2)
        sharded.add(vectors)
        try:
            want = flat.search(queries, 5)
            got = sharded.search(queries, 5)
            np.testing.assert_array_equal(want.ids, [[0, 2, 1, -1, -1]])
            np.testing.assert_array_equal(got.ids, want.ids)
        finally:
            sharded.close()

    def test_boundary_ties_break_toward_smaller_id(self):
        """argpartition pre-selection keeps an arbitrary candidate among
        scores tied at the cut; block_topk must fall through to the exact
        (distance, id) rank so the smaller id wins regardless of column
        order."""
        distances = np.array([[5.0, 1.0, 1.0, 1.0, 9.0]])
        for k in (1, 2):
            ids, d = block_topk(distances, k)
            np.testing.assert_array_equal(ids, [[1, 2][:k]])
            np.testing.assert_array_equal(d, [[1.0, 1.0][:k]])

    def test_boundary_tie_fallback_with_nan_cut(self):
        """All-NaN boundary: the NaN candidates tie among themselves and
        must still pick the smallest ids."""
        distances = np.array([[np.nan, np.nan, np.nan, 1.0]])
        ids, _ = block_topk(distances, 2)
        np.testing.assert_array_equal(ids, [[3, 0]])

    def test_partition_invariance_on_exact_ties(self):
        """The PR 5 finding: PQ-style duplicate scores made the one-shot
        scan and the width-1 blocked scan return different (tied) ids.
        With the fallback, every blocking returns the same winner."""
        rng = np.random.default_rng(5)
        scores = rng.choice([1.0, 2.0, 3.0], size=(3, 40))

        def score_block(start, stop):
            return scores[:, start:stop]

        want = blockwise_topk(score_block, 40, 5, num_queries=3, block_size=40)
        for block in (1, 3, 7, 39):
            got = blockwise_topk(
                score_block, 40, 5, num_queries=3, block_size=block
            )
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
