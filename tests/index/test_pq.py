"""Tests for product quantization (repro.index.pq)."""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex, ProductQuantizer


def clustered_data(n=600, d=16, n_clusters=12, seed=0):
    """Clustered vectors (PQ behaves poorly on pure noise, well on structure)."""
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(n_clusters, d)) * 5
    assignments = rng.integers(0, n_clusters, size=n)
    return (centres[assignments] + rng.normal(size=(n, d)) * 0.3).astype(np.float32)


class TestProductQuantizer:
    def test_dim_divisibility_enforced(self):
        with pytest.raises(ValueError):
            ProductQuantizer(dim=10, m=3)

    def test_nbits_bounds(self):
        with pytest.raises(ValueError):
            ProductQuantizer(dim=8, m=2, nbits=9)

    def test_untrained_encode_raises(self):
        pq = ProductQuantizer(8, m=2)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((1, 8), dtype=np.float32))

    def test_code_shape_and_dtype(self):
        data = clustered_data(d=16)
        pq = ProductQuantizer(16, m=4, seed=0)
        pq.train(data)
        codes = pq.encode(data[:10])
        assert codes.shape == (10, 4)
        assert codes.dtype == np.uint8

    def test_code_bytes(self):
        assert ProductQuantizer(64, m=8).code_bytes == 8

    def test_reconstruction_reduces_error_vs_mean(self):
        """Decoded vectors must beat the trivial 'predict the mean' codec."""
        data = clustered_data(d=16)
        pq = ProductQuantizer(16, m=4, seed=0)
        pq.train(data)
        decoded = pq.decode(pq.encode(data))
        pq_err = ((data - decoded) ** 2).sum(axis=1).mean()
        mean_err = ((data - data.mean(axis=0)) ** 2).sum(axis=1).mean()
        assert pq_err < 0.25 * mean_err

    def test_decode_uses_codebook_rows(self):
        data = clustered_data(d=8)
        pq = ProductQuantizer(8, m=2, nbits=4, seed=0)
        pq.train(data)
        codes = pq.encode(data[:3])
        decoded = pq.decode(codes)
        for row in range(3):
            for j in range(2):
                np.testing.assert_array_equal(
                    decoded[row, j * 4 : (j + 1) * 4],
                    pq.codebooks[j][codes[row, j]],
                )

    def test_adc_matches_decoded_distance(self):
        """ADC distance == exact distance to the decoded vector."""
        data = clustered_data(d=8)
        pq = ProductQuantizer(8, m=2, seed=0)
        pq.train(data)
        codes = pq.encode(data[:20])
        queries = data[30:33]
        adc = pq.adc_distances(queries, codes)
        decoded = pq.decode(codes).astype(np.float64)
        for qi in range(3):
            exact = ((decoded - queries[qi]) ** 2).sum(axis=1)
            np.testing.assert_allclose(adc[qi], exact, rtol=1e-4, atol=1e-4)

    def test_more_bits_reduce_distortion(self):
        data = clustered_data(d=8)
        errs = {}
        for nbits in (2, 6):
            pq = ProductQuantizer(8, m=2, nbits=nbits, seed=0)
            pq.train(data)
            decoded = pq.decode(pq.encode(data))
            errs[nbits] = ((data - decoded) ** 2).mean()
        assert errs[6] < errs[2]


class TestPQIndex:
    def test_lifecycle_enforced(self):
        index = PQIndex(8, m=2)
        with pytest.raises(RuntimeError):
            index.add(np.zeros((2, 8), dtype=np.float32))

    def test_compression_ratio(self):
        """The paper's headline: 256 B -> 8 B per vector (64-d, m=8)."""
        data = clustered_data(n=600, d=64, seed=1)
        index = PQIndex(64, m=8, seed=0)
        index.train(data)
        index.add(data)
        flat = FlatIndex(64)
        flat.add(data)
        code_bytes = index.codes.nbytes / index.ntotal
        assert code_bytes == 8
        assert flat.memory_bytes() / index.codes.nbytes == 32.0

    def test_recall_reasonable_on_clustered_data(self):
        data = clustered_data(n=600, d=16)
        index = PQIndex(16, m=4, seed=0)
        index.train(data)
        index.add(data)
        flat = FlatIndex(16)
        flat.add(data)
        queries = data[:40]
        approx = index.search(queries, 10)
        exact = flat.search(queries, 10)
        overlap = np.mean([
            len(set(a.tolist()) & set(e.tolist())) / 10
            for a, e in zip(approx.ids, exact.ids)
        ])
        assert overlap > 0.6

    def test_recall_improves_with_k(self):
        """Figure 4's mechanism: larger k recovers PQ's ranking noise."""
        data = clustered_data(n=400, d=16, seed=2)
        index = PQIndex(16, m=4, seed=0)
        index.train(data)
        index.add(data)
        flat = FlatIndex(16)
        flat.add(data)
        queries = data[:40] + 0.05 * np.random.default_rng(3).normal(
            size=(40, 16)
        ).astype(np.float32)
        def recall(k):
            a = index.search(queries, k).ids
            e = flat.search(queries, k).ids
            return np.mean([
                len(set(x.tolist()) & set(y.tolist())) / k
                for x, y in zip(a, e)
            ])
        # Large-k retrieval absorbs PQ's ranking noise (Figure 4's regime):
        # overlap at k=20 stays high even though individual ranks shuffle.
        assert recall(20) >= 0.85
        assert recall(1) >= 0.5

    def test_search_empty(self):
        index = PQIndex(8, m=2, seed=0)
        index.train(clustered_data(d=8))
        result = index.search(np.zeros((1, 8), dtype=np.float32), 4)
        assert (result.ids == -1).all()

    def test_deterministic_given_seed(self):
        data = clustered_data(n=200, d=8)
        def build():
            index = PQIndex(8, m=2, seed=9)
            index.train(data)
            index.add(data)
            return index.search(data[:5], 3).ids
        np.testing.assert_array_equal(build(), build())

    def test_reconstruct_returns_decoded(self):
        data = clustered_data(n=200, d=8)
        index = PQIndex(8, m=2, seed=0)
        index.train(data)
        index.add(data)
        rec = index.reconstruct(5)
        assert rec.shape == (8,)
        # Close to the original (clustered data quantizes well).
        assert ((rec - data[5]) ** 2).sum() < ((data[5]) ** 2).sum()
