"""Tests for repro.index.sharded (fan-out equivalence and id remapping)."""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex
from repro.index.sharded import ShardedIndex


def make_data(n=200, d=16, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d)).astype(np.float32)
    queries = rng.normal(size=(7, d)).astype(np.float32)
    return data, queries


class TestBasics:
    def test_validates_args(self):
        with pytest.raises(ValueError):
            ShardedIndex(0, 2)
        with pytest.raises(ValueError):
            ShardedIndex(4, 0)

    def test_round_robin_striping(self):
        data, _ = make_data(n=10, d=4)
        index = ShardedIndex(4, 3)
        index.add(data[:4])
        index.add(data[4:])
        assert index.ntotal == 10
        sizes = [s.ntotal for s in index.shards]
        assert sizes == [4, 3, 3]

    def test_global_id_remap(self):
        """Searching for a stored vector returns its global arrival id."""
        data, _ = make_data(n=30, d=8, seed=5)
        index = ShardedIndex(8, 4)
        index.add(data)
        result = index.search(data, 1)
        np.testing.assert_array_equal(result.ids[:, 0], np.arange(30))

    def test_memory_bytes_sums_shards(self):
        data, _ = make_data(n=12, d=4)
        index = ShardedIndex(4, 3)
        index.add(data)
        assert index.memory_bytes() == 12 * 4 * 4

    def test_empty_index(self):
        index = ShardedIndex(4, 3)
        result = index.search(np.zeros((2, 4), dtype=np.float32), 3)
        assert result.ids.shape == (2, 3)
        assert (result.ids == -1).all()

    def test_k_larger_than_ntotal_pads(self):
        data, _ = make_data(n=3, d=4)
        index = ShardedIndex(4, 2)
        index.add(data[:3, :4])
        result = index.search(np.zeros((1, 4), dtype=np.float32), 8)
        assert (result.ids[0, 3:] == -1).all()
        assert np.isinf(result.distances[0, 3:]).all()

    def test_close_idempotent(self):
        data, queries = make_data(n=8, d=4)
        index = ShardedIndex(4, 2)
        index.add(data[:, :4])
        index.search(queries[:, :4], 2)
        index.close()
        index.close()
        # Pool is rebuilt lazily after close.
        result = index.search(queries[:, :4], 2)
        assert result.ids.shape == (7, 2)


class TestFlatEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_identical_to_unsharded_flat(self, num_shards):
        data, queries = make_data()
        flat = FlatIndex(16)
        flat.add(data)
        sharded = ShardedIndex(16, num_shards)
        sharded.add(data)
        want = flat.search(queries, 10)
        got = sharded.search(queries, 10)
        assert got.ids.tobytes() == want.ids.tobytes()
        assert got.distances.tobytes() == want.distances.tobytes()
        sharded.close()

    @pytest.mark.parametrize("num_shards", [3, 8])
    def test_incremental_adds_match(self, num_shards):
        data, queries = make_data(seed=7)
        flat = FlatIndex(16)
        sharded = ShardedIndex(16, num_shards)
        for start in range(0, len(data), 17):
            chunk = data[start : start + 17]
            flat.add(chunk)
            sharded.add(chunk)
        want = flat.search(queries, 5)
        got = sharded.search(queries, 5)
        assert got.ids.tobytes() == want.ids.tobytes()
        sharded.close()


class TestPQEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_identical_to_unsharded_pq(self, num_shards):
        """Identically-seeded shards learn the same codebooks, so the
        sharded ADC scan reproduces the unsharded one exactly."""
        data, queries = make_data(n=300, seed=11)

        def factory(dim):
            return PQIndex(dim, m=4, nbits=4, seed=13)

        plain = factory(16)
        plain.train(data)
        plain.add(data)
        sharded = ShardedIndex(16, num_shards, factory=factory)
        sharded.train(data)
        sharded.add(data)
        assert sharded.is_trained
        want = plain.search(queries, 10)
        got = sharded.search(queries, 10)
        assert got.ids.tobytes() == want.ids.tobytes()
        assert got.distances.tobytes() == want.distances.tobytes()
        sharded.close()
