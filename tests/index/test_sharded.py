"""Tests for repro.index.sharded (fan-out equivalence and id remapping).

The executor matrix (inline / thread / process) must be behaviourally
interchangeable: every executor returns bit-identical results over the
same store, and the process executor's worker-pool lifecycle (lazy
spawn, worker reuse, invalidate-on-add, clean close with no shared
memory left behind) is covered explicitly.
"""

import os

import numpy as np
import pytest

from repro.index import shm
from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex
from repro.index.sharded import ShardedIndex

EXECUTORS = ["inline", "thread", "process"]


def make_data(n=200, d=16, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d)).astype(np.float32)
    queries = rng.normal(size=(7, d)).astype(np.float32)
    return data, queries


class TestBasics:
    def test_validates_args(self):
        with pytest.raises(ValueError):
            ShardedIndex(0, 2)
        with pytest.raises(ValueError):
            ShardedIndex(4, 0)

    def test_round_robin_striping(self):
        data, _ = make_data(n=10, d=4)
        index = ShardedIndex(4, 3)
        index.add(data[:4])
        index.add(data[4:])
        assert index.ntotal == 10
        sizes = [s.ntotal for s in index.shards]
        assert sizes == [4, 3, 3]

    def test_global_id_remap(self):
        """Searching for a stored vector returns its global arrival id."""
        data, _ = make_data(n=30, d=8, seed=5)
        index = ShardedIndex(8, 4)
        index.add(data)
        result = index.search(data, 1)
        np.testing.assert_array_equal(result.ids[:, 0], np.arange(30))

    def test_memory_bytes_sums_shards(self):
        data, _ = make_data(n=12, d=4)
        index = ShardedIndex(4, 3)
        index.add(data)
        assert index.memory_bytes() == 12 * 4 * 4

    def test_empty_index(self):
        index = ShardedIndex(4, 3)
        result = index.search(np.zeros((2, 4), dtype=np.float32), 3)
        assert result.ids.shape == (2, 3)
        assert (result.ids == -1).all()

    def test_k_larger_than_ntotal_pads(self):
        data, _ = make_data(n=3, d=4)
        index = ShardedIndex(4, 2)
        index.add(data[:3, :4])
        result = index.search(np.zeros((1, 4), dtype=np.float32), 8)
        assert (result.ids[0, 3:] == -1).all()
        assert np.isinf(result.distances[0, 3:]).all()

    def test_close_idempotent(self):
        data, queries = make_data(n=8, d=4)
        index = ShardedIndex(4, 2)
        index.add(data[:, :4])
        index.search(queries[:, :4], 2)
        index.close()
        index.close()
        # Pool is rebuilt lazily after close.
        result = index.search(queries[:, :4], 2)
        assert result.ids.shape == (7, 2)


class TestFlatEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_identical_to_unsharded_flat(self, num_shards):
        data, queries = make_data()
        flat = FlatIndex(16)
        flat.add(data)
        sharded = ShardedIndex(16, num_shards)
        sharded.add(data)
        want = flat.search(queries, 10)
        got = sharded.search(queries, 10)
        assert got.ids.tobytes() == want.ids.tobytes()
        assert got.distances.tobytes() == want.distances.tobytes()
        sharded.close()

    @pytest.mark.parametrize("num_shards", [3, 8])
    def test_incremental_adds_match(self, num_shards):
        data, queries = make_data(seed=7)
        flat = FlatIndex(16)
        sharded = ShardedIndex(16, num_shards)
        for start in range(0, len(data), 17):
            chunk = data[start : start + 17]
            flat.add(chunk)
            sharded.add(chunk)
        want = flat.search(queries, 5)
        got = sharded.search(queries, 5)
        assert got.ids.tobytes() == want.ids.tobytes()
        sharded.close()


class TestExecutorEquivalence:
    """Every executor returns bit-identical results on the same store."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_flat_bit_identical(self, executor, num_shards):
        data, queries = make_data(n=150, seed=3)
        flat = FlatIndex(16)
        flat.add(data)
        want = flat.search(queries, 10)
        with ShardedIndex(16, num_shards, executor=executor) as sharded:
            sharded.add(data)
            assert sharded.resolved_executor() == executor
            got = sharded.search(queries, 10)
            assert got.ids.tobytes() == want.ids.tobytes()
            assert got.distances.tobytes() == want.distances.tobytes()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_pq_bit_identical(self, executor):
        data, queries = make_data(n=220, seed=21)

        def factory(dim):
            return PQIndex(dim, m=4, nbits=4, seed=29)

        plain = factory(16)
        plain.train(data)
        plain.add(data)
        want = plain.search(queries, 10)
        with ShardedIndex(
            16, 3, factory=factory, executor=executor
        ) as sharded:
            sharded.train(data)
            sharded.add(data)
            got = sharded.search(queries, 10)
            assert got.ids.tobytes() == want.ids.tobytes()
            assert got.distances.tobytes() == want.distances.tobytes()

    def test_auto_resolution_matches_host(self):
        index = ShardedIndex(8, 2)
        resolved = index.resolved_executor()
        expected = "process" if (os.cpu_count() or 1) > 1 else "thread"
        assert resolved == expected
        index.close()

    def test_auto_falls_back_for_unexportable_family(self):
        """Families without a shm exporter never auto-pick processes."""
        from repro.index.lsh import LSHIndex

        def factory(dim):
            return LSHIndex(dim, nbits=8, ntables=2, seed=0)

        index = ShardedIndex(8, 2, factory=factory)
        assert index.resolved_executor() == "thread"
        index.close()

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            ShardedIndex(8, 2, executor="greenlet")

    def test_pickle_fallback_family_still_works_in_process(self):
        """A family without an shm exporter rides the pickle payload."""
        from repro.index.lsh import LSHIndex

        def factory(dim):
            return LSHIndex(dim, nbits=8, ntables=2, seed=0)

        data, queries = make_data(n=60, d=8, seed=9)
        want_index = ShardedIndex(8, 2, factory=factory, executor="inline")
        want_index.add(data)
        want = want_index.search(queries, 5)
        want_index.close()
        with ShardedIndex(
            8, 2, factory=factory, executor="process"
        ) as sharded:
            sharded.add(data)
            got = sharded.search(queries, 5)
            assert got.ids.tobytes() == want.ids.tobytes()


class TestProcessPoolLifecycle:
    def _build(self, **kwargs):
        # CI's multiprocessing matrix exercises different pool widths
        # (REPRO_TEST_NUM_WORKERS); locally the default is one worker
        # per shard.
        kwargs.setdefault(
            "num_workers",
            int(os.environ.get("REPRO_TEST_NUM_WORKERS", "0")) or None,
        )
        data, queries = make_data(n=120, seed=4)
        index = ShardedIndex(16, 4, executor="process", **kwargs)
        index.add(data)
        return index, queries

    def test_pool_spawns_lazily_on_first_search(self):
        index, queries = self._build()
        try:
            assert index._process_pool is None
            index.search(queries, 5)
            assert index._process_pool is not None
            assert index._process_pool.started
        finally:
            index.close()

    def test_workers_are_reused_across_searches(self):
        index, queries = self._build()
        try:
            index.search(queries, 5)
            pids = index._process_pool.worker_pids()
            assert all(pid is not None for pid in pids)
            for _ in range(3):
                index.search(queries, 5)
            assert index._process_pool.worker_pids() == pids
            assert index._process_pool.respawns == 0
        finally:
            index.close()

    def test_fewer_workers_than_shards_round_robins(self):
        index, queries = self._build(num_workers=2)
        flat = FlatIndex(16)
        flat.add(make_data(n=120, seed=4)[0])
        want = flat.search(queries, 5)
        try:
            got = index.search(queries, 5)
            assert got.ids.tobytes() == want.ids.tobytes()
            assert len(index._process_pool.worker_pids()) == 2
        finally:
            index.close()

    def test_close_terminates_workers_and_unlinks_shm(self):
        index, queries = self._build()
        index.search(queries, 5)
        pool = index._process_pool
        pids = pool.worker_pids()
        assert pool.shared_bytes() > 0
        index.close()
        index.close()  # idempotent
        for pid in pids:
            # A dead pid raises; a reused pid belongs to someone else.
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                pass
        assert not any(
            name.startswith(f"{shm.SEGMENT_PREFIX}-{os.getpid()}-")
            for name in shm.owned_segment_names()
        )

    def test_add_invalidates_and_reexports(self):
        """Growing the store drops the stale pool; the next search maps
        fresh segments and sees the new rows."""
        data, queries = make_data(n=80, seed=6)
        index = ShardedIndex(16, 4, executor="process")
        index.add(data[:40])
        try:
            index.search(queries, 5)
            first_pids = index._process_pool.worker_pids()
            index.add(data[40:])
            assert index._process_pool is None
            flat = FlatIndex(16)
            flat.add(data)
            want = flat.search(queries, 5)
            got = index.search(queries, 5)
            assert got.ids.tobytes() == want.ids.tobytes()
            assert index._process_pool.worker_pids() != first_pids
        finally:
            index.close()

    def test_crashed_worker_respawns_and_retry_succeeds(self):
        # 1:1 workers so the respawn is attributed to shard 2 (with
        # fewer workers a co-resident shard may trigger the heal first).
        index, queries = self._build(num_workers=4)
        flat = FlatIndex(16)
        flat.add(make_data(n=120, seed=4)[0])
        want = flat.search(queries, 5)
        try:
            index.search(queries, 5)
            pool = index._process_pool
            victim = pool._worker_of[2]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            got = index.search(queries, 5)
            assert got.partial is False
            assert got.ids.tobytes() == want.ids.tobytes()
            assert pool.respawns >= 1
            health = index.health_stats()
            assert health["worker_respawns"] >= 1
            assert health["shards"][2]["respawns"] >= 1
        finally:
            index.close()

    def test_untrained_pq_shard_fails_export(self):
        def factory(dim):
            return PQIndex(dim, m=4, nbits=4, seed=1)

        index = ShardedIndex(16, 2, factory=factory, executor="process")
        with pytest.raises(RuntimeError, match="untrained"):
            index._worker_pool()
        index.close()

    def test_health_stats_reports_executor_and_seconds(self):
        index, queries = self._build()
        try:
            index.search(queries, 5)
            health = index.health_stats()
            assert health["executor"] == "process"
            assert all(s["seconds"] > 0 for s in health["shards"])
        finally:
            index.close()


class TestPQEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_identical_to_unsharded_pq(self, num_shards):
        """Identically-seeded shards learn the same codebooks, so the
        sharded ADC scan reproduces the unsharded one exactly."""
        data, queries = make_data(n=300, seed=11)

        def factory(dim):
            return PQIndex(dim, m=4, nbits=4, seed=13)

        plain = factory(16)
        plain.train(data)
        plain.add(data)
        sharded = ShardedIndex(16, num_shards, factory=factory)
        sharded.train(data)
        sharded.add(data)
        assert sharded.is_trained
        want = plain.search(queries, 10)
        got = sharded.search(queries, 10)
        assert got.ids.tobytes() == want.ids.tobytes()
        assert got.distances.tobytes() == want.distances.tobytes()
        sharded.close()
