"""Online mutation semantics: add/remove/update/compact per index family.

The invariants under test are local (single-threaded) — tombstoned rows
never surface, ids stay stable until a compaction renumbers them, every
error path rejects *before* any visibility change — plus the cross-family
equivalences: a sharded index mutated in place serves the same results as
a fresh inline twin of its live set, and a process-executor index that
receives ``add()`` after its workers spawned serves the new rows (the
re-export path).  The concurrent old-or-new property lives in
``tests/property/test_mutation.py``.
"""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.mutation import (
    IndexSnapshot,
    bury,
    check_row_ids,
    extend_tombstones,
    validate_removable,
)
from repro.index.partitioned import TypePartitionedIndex
from repro.index.pq import PQIndex
from repro.index.sharded import ShardedIndex
from repro.index.shm import owned_segment_names
from repro.testing import assert_topk_equal, brute_force_topk, case_rng

DIM = 16


def make_store(seed, n=120, dim=DIM):
    rng = case_rng(29, seed)
    return (
        rng.standard_normal((n, dim)).astype(np.float32),
        rng.standard_normal((7, dim)).astype(np.float32),
    )


def live_oracle(vectors, removed, queries, k):
    """Brute-force top-k over the live rows, ids mapped back to originals."""
    keep = np.setdiff1d(np.arange(len(vectors)), np.asarray(sorted(removed)))
    ids, distances = brute_force_topk(vectors[keep], queries, k)
    mapped = np.where(ids >= 0, keep[np.clip(ids, 0, None)], ids)
    return mapped, distances


class TestMutationHelpers:
    def test_check_row_ids_validates(self):
        assert check_row_ids([], 5).dtype == np.int64
        assert list(check_row_ids([3, 0], 5)) == [3, 0]
        with pytest.raises(ValueError, match="must be in"):
            check_row_ids([5], 5)
        with pytest.raises(ValueError, match="must be in"):
            check_row_ids([-1], 5)
        with pytest.raises(ValueError, match="duplicate"):
            check_row_ids([1, 1], 5)
        with pytest.raises(ValueError, match="integer"):
            check_row_ids([0.5], 5)

    def test_bury_is_copy_on_write(self):
        first = bury(None, 6, np.array([1], dtype=np.int64))
        second = bury(first, 6, np.array([4], dtype=np.int64))
        assert first is not second
        assert list(np.nonzero(first)[0]) == [1]
        assert list(np.nonzero(second)[0]) == [1, 4]
        with pytest.raises(ValueError, match="already removed"):
            validate_removable(second, np.array([4], dtype=np.int64))

    def test_extend_tombstones_none_stays_none(self):
        assert extend_tombstones(None, 3) is None
        grown = extend_tombstones(np.array([True, False]), 2)
        assert list(grown) == [True, False, False, False]


class TestFlatMutation:
    def test_remove_hides_rows_and_matches_live_oracle(self):
        vectors, queries = make_store(0)
        index = FlatIndex(DIM)
        index.add(vectors)
        removed = [0, 7, 63, 119]
        index.remove(np.asarray(removed))
        assert index.ntotal == len(vectors)  # ids stay stable
        assert index.nlive == len(vectors) - len(removed)
        assert index.tombstone_count == len(removed)
        got = index.search(queries, 10)
        assert not np.isin(got.ids, removed).any()
        want_ids, _ = live_oracle(vectors, removed, queries, 10)
        assert np.array_equal(np.sort(got.ids), np.sort(want_ids))

    def test_remove_error_paths_are_all_or_nothing(self):
        vectors, _ = make_store(1)
        index = FlatIndex(DIM)
        index.add(vectors)
        index.remove([5])
        for bad in ([5], [len(vectors)], [-1], [3, 3]):
            with pytest.raises(ValueError):
                index.remove(bad)
        # The failed batches must not have buried their valid members.
        assert index.tombstone_count == 1

    def test_k_larger_than_live_set_pads(self):
        vectors, queries = make_store(2, n=6)
        index = FlatIndex(DIM)
        index.add(vectors)
        index.remove([0, 1, 2, 3])
        got = index.search(queries, 5)
        assert ((got.ids >= 0).sum(axis=1) == 2).all()
        assert (got.ids[:, 2:] == -1).all()
        assert np.isinf(got.distances[:, 2:]).all()

    def test_update_is_one_publish_and_returns_new_ids(self):
        vectors, queries = make_store(3)
        index = FlatIndex(DIM)
        index.add(vectors)
        epoch = index.mutation_epoch
        replacement = np.full((2, DIM), 0.25, dtype=np.float32)
        new_ids = index.update([4, 9], replacement)
        assert list(new_ids) == [len(vectors), len(vectors) + 1]
        assert index.mutation_epoch == epoch + 1  # tombstone+append, one publish
        got = index.search(queries, index.nlive)
        assert not np.isin(got.ids, [4, 9]).any()
        assert np.isin(new_ids, got.ids).all()

    def test_pinned_snapshot_ignores_later_mutations(self):
        vectors, queries = make_store(4)
        index = FlatIndex(DIM)
        index.add(vectors)
        pinned = index.snapshot()
        before = index.search(queries, 10, snapshot=pinned)
        index.remove(np.arange(0, 60, dtype=np.int64))
        index.add(np.full((8, DIM), 3.0, dtype=np.float32))
        replay = index.search(queries, 10, snapshot=pinned)
        assert_topk_equal(replay, before, context="pinned snapshot drifted")

    def test_compact_remaps_and_resets(self):
        vectors, queries = make_store(5)
        index = FlatIndex(DIM)
        index.add(vectors)
        assert index.compact() is None  # nothing to reclaim: no swap
        removed = [1, 2, 50]
        index.remove(removed)
        before = index.search(queries, 10)
        remap = index.compact()
        assert remap is not None and remap.shape == (len(vectors),)
        assert (remap[removed] == -1).all()
        live = np.setdiff1d(np.arange(len(vectors)), removed)
        assert list(remap[live]) == list(range(len(live)))
        assert index.ntotal == index.nlive == len(live)
        assert index.tombstone_count == 0
        after = index.search(queries, 10)
        assert np.array_equal(remap[before.ids], after.ids)
        np.testing.assert_array_equal(before.distances, after.distances)


class TestPQMutation:
    @staticmethod
    def make_index(vectors):
        index = PQIndex(DIM, m=4, nbits=4, seed=0)
        index.train(vectors)
        index.add(vectors)
        return index

    def test_remove_hides_rows(self):
        vectors, queries = make_store(6)
        index = self.make_index(vectors)
        index.remove([0, 99])
        got = index.search(queries, index.nlive)
        assert not np.isin(got.ids, [0, 99]).any()
        assert (got.ids >= 0).sum() == 7 * (len(vectors) - 2)

    def test_update_reencodes(self):
        vectors, _ = make_store(7)
        index = self.make_index(vectors)
        target = vectors[3] + 0.01
        new_ids = index.update([3], target[None, :])
        got = index.search(target[None, :], 1)
        assert got.ids[0, 0] == new_ids[0]

    def test_compact_retrains_and_serves_live_set(self):
        vectors, queries = make_store(8)
        index = self.make_index(vectors)
        removed = list(range(0, 40))
        index.remove(removed)
        before = index.search(queries, 10)
        remap = index.compact()
        assert remap is not None and (remap[removed] == -1).all()
        assert index.ntotal == len(vectors) - len(removed)
        assert index.tombstone_count == 0
        # The codebooks are retrained on the decoded live set (the raw
        # vectors are gone), so exact distances may shift — but the served
        # neighbourhood must stay essentially the same, remapped.
        after = index.search(queries, 10)
        assert (after.ids >= 0).all() and (after.ids < index.ntotal).all()
        want = remap[before.ids]
        overlap = np.mean(
            [
                len(set(a) & set(w)) / len(w)
                for a, w in zip(after.ids.tolist(), want.tolist())
            ]
        )
        assert overlap >= 0.6, f"post-compaction neighbourhood drifted: {overlap}"


class TestShardedMutation:
    @staticmethod
    def make_pair(vectors, num_shards=3, **kwargs):
        index = ShardedIndex(
            DIM, num_shards, factory=lambda d: FlatIndex(d), **kwargs
        )
        index.train(vectors)
        index.add(vectors)
        return index

    def test_remove_matches_inline_twin_of_live_set(self):
        vectors, queries = make_store(9)
        index = self.make_pair(vectors, executor="inline")
        removed = [0, 5, 17, 44, 90, 118]
        index.remove(np.asarray(removed))
        got = index.search(queries, 12)
        assert not np.isin(got.ids, removed).any()
        want_ids, want_d = live_oracle(vectors, removed, queries, 12)
        assert np.array_equal(np.sort(got.ids), np.sort(want_ids))
        index.close()

    def test_remove_all_or_nothing_across_shards(self):
        vectors, _ = make_store(10)
        index = self.make_pair(vectors, executor="inline")
        index.remove([4])
        with pytest.raises(ValueError):
            index.remove([7, 4])  # 4 is already gone, 7 is on another shard
        assert index.tombstone_count == 1  # 7 must not have been buried
        index.remove([7])
        assert index.tombstone_count == 2
        index.close()

    def test_update_returns_global_ids(self):
        vectors, queries = make_store(11)
        index = self.make_pair(vectors, executor="inline")
        replacement = np.full((3, DIM), -0.5, dtype=np.float32)
        new_ids = index.update([2, 3], replacement)
        assert len(new_ids) == 3 and (new_ids >= len(vectors)).all()
        got = index.search(replacement[:1], 3)
        assert np.isin(got.ids[0], new_ids).all()
        index.close()

    def test_compact_remap_is_consistent(self):
        vectors, queries = make_store(12)
        index = self.make_pair(vectors, executor="thread")
        removed = list(range(0, 30)) + [111]
        index.remove(np.asarray(removed))
        before = index.search(queries, 10)
        remap = index.compact()
        assert remap is not None and (remap[removed] == -1).all()
        assert index.ntotal == index.nlive == len(vectors) - len(removed)
        after = index.search(queries, 10)
        assert np.array_equal(remap[before.ids], after.ids)
        np.testing.assert_array_equal(before.distances, after.distances)
        index.close()

    def test_process_executor_serves_adds_after_spawn(self):
        """Satellite: a process-pool index receiving ``add()`` after its
        workers spawned must invalidate + re-export and serve the new
        rows, bit-identical to an inline twin of the same store."""
        vectors, queries = make_store(13, n=90)
        extra = np.full((5, DIM), 2.5, dtype=np.float32)
        proc = self.make_pair(
            vectors, num_shards=2, executor="process", num_workers=2
        )
        inline = self.make_pair(vectors, num_shards=2, executor="inline")
        try:
            # Spawn the workers (first search exports the pre-add store).
            assert_topk_equal(
                proc.search(queries, 8),
                inline.search(queries, 8),
                context="pre-add",
            )
            proc.add(extra)
            inline.add(extra)
            got = proc.search(extra, 3)
            new_ids = np.arange(len(vectors), len(vectors) + 5)
            assert np.isin(got.ids[:, 0], new_ids).all()
            assert_topk_equal(
                got, inline.search(extra, 3), context="post-add"
            )
            # Mutations after spawn, served through re-exported workers.
            proc.remove(new_ids[:2])
            inline.remove(new_ids[:2])
            assert_topk_equal(
                proc.search(queries, 8),
                inline.search(queries, 8),
                context="post-remove",
            )
        finally:
            proc.close()
            inline.close()
        assert owned_segment_names() == []


class TestPartitionedMutation:
    def test_remove_by_global_id(self):
        rng = case_rng(31, 0)
        vectors = rng.standard_normal((40, DIM)).astype(np.float32)
        parts = ["even" if i % 2 == 0 else "odd" for i in range(40)]
        index = TypePartitionedIndex(DIM, factory=lambda d: FlatIndex(d))
        index.train(vectors)
        index.add(vectors, parts)
        index.remove([0, 1, 6])
        assert index.tombstone_count == 3
        assert index.nlive == 37
        got = index.search(vectors[:4], 5)
        assert not np.isin(got.ids, [0, 1, 6]).any()
        with pytest.raises(ValueError):
            index.remove([0])  # double remove
        with pytest.raises(ValueError):
            index.remove([400])  # out of range
        assert index.tombstone_count == 3
