"""Tests for repro.index.pca."""

import numpy as np
import pytest

from repro.index.pca import PCATransform


def low_rank_data(n=200, d=16, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank))
    basis = rng.normal(size=(rank, d))
    return (factors @ basis + 0.01 * rng.normal(size=(n, d))).astype(np.float32)


class TestPCATransform:
    def test_apply_before_train_raises(self):
        with pytest.raises(RuntimeError):
            PCATransform(2).apply(np.zeros((3, 4)))

    def test_projection_shape(self):
        data = low_rank_data()
        pca = PCATransform(5).train(data)
        assert pca.apply(data).shape == (200, 5)

    def test_components_orthonormal(self):
        pca = PCATransform(4).train(low_rank_data())
        gram = pca.components @ pca.components.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-8)

    def test_low_rank_data_reconstructs_well(self):
        data = low_rank_data(rank=3)
        pca = PCATransform(3).train(data)
        rebuilt = pca.inverse(pca.apply(data))
        err = ((data - rebuilt) ** 2).mean()
        assert err < 1e-3

    def test_variance_sorted_descending(self):
        pca = PCATransform(5).train(low_rank_data())
        assert (np.diff(pca.explained_variance) <= 1e-9).all()

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            PCATransform(20).train(low_rank_data(d=16))

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            PCATransform(1).train(np.zeros((1, 4)))

    def test_bytes_per_vector(self):
        assert PCATransform(16).bytes_per_vector() == 64

    def test_more_components_never_worse(self):
        data = low_rank_data(rank=6)
        def error(k):
            pca = PCATransform(k).train(data)
            rebuilt = pca.inverse(pca.apply(data))
            return ((data - rebuilt) ** 2).mean()
        assert error(6) <= error(2) + 1e-12
