"""Tests for repro.index.kmeans."""

import numpy as np
import pytest

from repro.index.kmeans import KMeans, _squared_distances


def blobs(n_per=50, centers=((0, 0), (10, 10), (-10, 10)), seed=0):
    rng = np.random.default_rng(seed)
    points = [
        rng.normal(size=(n_per, 2)) + np.asarray(c) for c in centers
    ]
    return np.concatenate(points).astype(np.float32)


class TestSquaredDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(5, 3)).astype(np.float32)
        b = rng.normal(size=(4, 3)).astype(np.float32)
        d = _squared_distances(a, b)
        for i in range(5):
            for j in range(4):
                expected = ((a[i].astype(np.float64) - b[j]) ** 2).sum()
                assert d[i, j] == pytest.approx(expected, rel=1e-5)

    def test_non_negative(self):
        a = np.random.default_rng(2).normal(size=(10, 4)).astype(np.float32)
        assert (_squared_distances(a, a) >= 0).all()

    def test_self_distance_zero(self):
        a = np.random.default_rng(3).normal(size=(6, 4)).astype(np.float32)
        d = _squared_distances(a, a)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-4)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points = blobs()
        km = KMeans(3, seed=0).fit(points)
        # Each true centre should have a centroid nearby.
        for centre in [(0, 0), (10, 10), (-10, 10)]:
            d = ((km.centroids - np.asarray(centre)) ** 2).sum(axis=1)
            assert d.min() < 2.0

    def test_predict_consistent_with_centroids(self):
        points = blobs()
        km = KMeans(3, seed=0).fit(points)
        labels = km.predict(points)
        d = km.transform(points)
        np.testing.assert_array_equal(labels, d.argmin(axis=1))

    def test_inertia_decreases_with_more_clusters(self):
        points = blobs()
        inertia2 = KMeans(2, seed=0).fit(points).inertia
        inertia6 = KMeans(6, seed=0).fit(points).inertia
        assert inertia6 < inertia2

    def test_deterministic_given_seed(self):
        points = blobs()
        a = KMeans(3, seed=5).fit(points).centroids
        b = KMeans(3, seed=5).fit(points).centroids
        np.testing.assert_array_equal(a, b)

    def test_fewer_points_than_clusters(self):
        points = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        km = KMeans(8, seed=0).fit(points)
        assert km.centroids.shape == (8, 4)

    def test_duplicate_points_handled(self):
        points = np.ones((50, 3), dtype=np.float32)
        km = KMeans(4, seed=0).fit(points)
        assert km.centroids.shape == (4, 3)
        assert np.isfinite(km.centroids).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_zero_points_rejected(self):
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros((0, 2)))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_all_centroids_retained(self):
        """Empty-cluster re-seeding keeps exactly k distinct slots."""
        points = blobs(n_per=30)
        km = KMeans(10, seed=1).fit(points)
        assert km.centroids.shape[0] == 10
