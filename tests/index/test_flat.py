"""Tests for repro.index.flat (the exact ground-truth index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.index.flat import FlatIndex


def make_index(n=100, d=8, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d)).astype(np.float32)
    index = FlatIndex(d)
    index.add(data)
    return index, data


class TestBasics:
    def test_ntotal_tracks_adds(self):
        index = FlatIndex(4)
        assert index.ntotal == 0
        index.add(np.zeros((3, 4), dtype=np.float32))
        index.add(np.zeros((2, 4), dtype=np.float32))
        assert index.ntotal == 5

    def test_dimension_validated(self):
        index = FlatIndex(4)
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 5), dtype=np.float32))

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            FlatIndex(4, metric="cosine")

    def test_invalid_k(self):
        index, _ = make_index()
        with pytest.raises(ValueError):
            index.search(np.zeros((1, 8), dtype=np.float32), 0)

    def test_memory_bytes(self):
        index, data = make_index(n=10, d=8)
        assert index.memory_bytes() == 10 * 8 * 4

    def test_reconstruct(self):
        index, data = make_index()
        np.testing.assert_array_equal(index.reconstruct(7), data[7])


class TestSearch:
    def test_self_query_returns_self_first(self):
        index, data = make_index()
        result = index.search(data[:10], 1)
        np.testing.assert_array_equal(result.ids[:, 0], np.arange(10))
        np.testing.assert_allclose(result.distances[:, 0], 0.0, atol=1e-4)

    def test_matches_bruteforce_argsort(self):
        index, data = make_index(n=50)
        rng = np.random.default_rng(9)
        queries = rng.normal(size=(5, 8)).astype(np.float32)
        result = index.search(queries, 10)
        for qi in range(5):
            d = ((data.astype(np.float64) - queries[qi]) ** 2).sum(axis=1)
            expected = np.argsort(d, kind="stable")[:10]
            np.testing.assert_array_equal(result.ids[qi], expected)

    def test_distances_sorted_ascending(self):
        index, data = make_index()
        result = index.search(data[:5], 20)
        for row in result.distances:
            assert (np.diff(row) >= -1e-9).all()

    def test_k_larger_than_ntotal_pads(self):
        index, _ = make_index(n=3)
        result = index.search(np.zeros((1, 8), dtype=np.float32), 10)
        assert (result.ids[0, 3:] == -1).all()
        assert np.isinf(result.distances[0, 3:]).all()

    def test_empty_index(self):
        index = FlatIndex(4)
        result = index.search(np.zeros((2, 4), dtype=np.float32), 3)
        assert (result.ids == -1).all()

    def test_single_vector_query_shape(self):
        index, data = make_index()
        result = index.search(data[0], 5)  # 1-D query is promoted
        assert result.ids.shape == (1, 5)

    def test_inner_product_metric(self):
        data = np.eye(4, dtype=np.float32)
        index = FlatIndex(4, metric="ip")
        index.add(data)
        query = np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        result = index.search(query, 1)
        assert result.ids[0, 0] == 0

    @given(
        hnp.arrays(
            np.float32,
            st.tuples(st.integers(2, 30), st.just(6)),
            elements=st.floats(-100, 100, width=32),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_top1_is_global_minimum(self, data):
        index = FlatIndex(6)
        index.add(data)
        query = data[:1]
        result = index.search(query, 1)
        d = ((data.astype(np.float64) - query[0]) ** 2).sum(axis=1)
        assert result.distances[0, 0] == pytest.approx(d.min(), rel=1e-4, abs=1e-4)
