"""TypePartitionedIndex: per-key sub-indices with a merge_topk union."""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.partitioned import DEFAULT_PARTITION, TypePartitionedIndex
from repro.index.pq import PQIndex
from repro.testing import assert_topk_agrees, assert_topk_equal

DIM = 16


def make_store(n=120, dim=DIM, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    queries = rng.standard_normal((5, dim)).astype(np.float32)
    keys = [f"t{i % 3}" for i in range(n)]
    return vectors, queries, keys


class TestConstruction:
    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="dim"):
            TypePartitionedIndex(0)

    def test_rejects_mismatched_key_count(self):
        index = TypePartitionedIndex(DIM)
        with pytest.raises(ValueError, match="partition keys"):
            index.add(np.zeros((3, DIM), dtype=np.float32), ["a", "b"])

    def test_partitions_created_lazily_in_first_seen_order(self):
        vectors, _, _ = make_store(6)
        index = TypePartitionedIndex(DIM)
        index.add(vectors, ["b", "a", "b", "c", "a", "b"])
        assert index.partition_keys() == ("b", "a", "c")
        assert index.partition_sizes() == {"b": 3, "a": 2, "c": 1}
        assert index.ntotal == 6

    def test_global_ids_survive_multiple_adds(self):
        vectors, queries, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors[:50], keys[:50])
        index.add(vectors[50:], keys[50:])
        flat = FlatIndex(DIM)
        flat.add(vectors)
        assert_topk_agrees(index.search(queries, 7), flat.search(queries, 7))

    def test_partition_global_ids(self):
        vectors, _, keys = make_store(9)
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        ids = index.partition_global_ids("t1")
        assert ids.dtype == np.int64
        assert ids.tolist() == [i for i in range(9) if i % 3 == 1]
        with pytest.raises(KeyError):
            index.partition_global_ids("missing")

    def test_memory_bytes_counts_payload_and_id_columns(self):
        vectors, _, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        flat = FlatIndex(DIM)
        flat.add(vectors)
        assert index.memory_bytes() >= flat.memory_bytes()


class TestSearch:
    def test_all_partition_union_matches_flat(self):
        vectors, queries, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        flat = FlatIndex(DIM)
        flat.add(vectors)
        assert_topk_agrees(index.search(queries, 10), flat.search(queries, 10))

    def test_selected_partitions_match_post_filtered_full_scan(self):
        vectors, queries, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        flat = FlatIndex(DIM)
        flat.add(vectors)
        got = index.search(queries, 5, partitions=["t2"])
        full = flat.search(queries, len(vectors))
        want = np.array(
            [[i for i in row if i % 3 == 2][:5] for row in full.ids]
        )
        assert np.array_equal(got.ids, want)

    def test_pq_partitions_bit_identical_to_post_filtering(self):
        """With a shared pre-trained quantizer the ADC distances do not
        depend on partitioning, so filtered results are *bit*-identical
        to post-filtering the unpartitioned index (the tentpole's
        exactness claim, pinned on the one bit-exact scan family)."""
        vectors, queries, keys = make_store(n=96)

        def trained_pq(d):
            sub = PQIndex(d, m=4, seed=11)
            sub.train(vectors)
            return sub

        index = TypePartitionedIndex(DIM, factory=trained_pq)
        index.add(vectors, keys)
        reference = trained_pq(DIM)
        reference.add(vectors)

        got = index.search(queries, 6, partitions=["t0", "t1"])
        full = reference.search(queries, len(vectors))
        keep = [
            [(i, d) for i, d in zip(irow, drow) if i % 3 != 2][:6]
            for irow, drow in zip(full.ids, full.distances)
        ]
        want_ids = np.array([[i for i, _ in row] for row in keep])
        want_d = np.array([[d for _, d in row] for row in keep])
        assert_topk_equal(got, (want_ids, want_d))

    def test_unknown_and_empty_selections_return_padding(self):
        vectors, queries, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        for selection in (["missing"], []):
            result = index.search(queries, 4, partitions=selection)
            assert (result.ids == -1).all()
            assert np.isinf(result.distances).all()

    def test_duplicate_selection_keys_are_scanned_once(self):
        vectors, queries, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        once = index.search(queries, 5, partitions=["t0"])
        twice = index.search(queries, 5, partitions=["t0", "t0"])
        assert_topk_equal(twice, once)

    def test_k_wider_than_selection_pads(self):
        vectors, queries, _ = make_store(n=4)
        index = TypePartitionedIndex(DIM)
        index.add(vectors, ["only"] * 4)
        result = index.search(queries, 9)
        assert result.ids.shape == (len(queries), 9)
        assert (result.ids[:, 4:] == -1).all()

    def test_rows_in(self):
        vectors, _, keys = make_store()
        index = TypePartitionedIndex(DIM)
        index.add(vectors, keys)
        assert index.rows_in() == len(vectors)
        assert index.rows_in(["t0"]) == sum(1 for k in keys if k == "t0")
        assert index.rows_in(["missing"]) == 0

    def test_empty_index_searches_to_padding(self):
        index = TypePartitionedIndex(DIM)
        queries = np.zeros((2, DIM), dtype=np.float32)
        result = index.search(queries, 3)
        assert (result.ids == -1).all()

    def test_default_partition_is_a_plain_key(self):
        vectors, queries, _ = make_store(n=6)
        index = TypePartitionedIndex(DIM)
        index.add(vectors, [DEFAULT_PARTITION] * 6)
        assert index.partition_keys() == (DEFAULT_PARTITION,)
        assert index.rows_in([DEFAULT_PARTITION]) == 6
