"""Cross-index property tests (hypothesis) on shared invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex, ProductQuantizer


@st.composite
def float_matrix(draw, min_rows=4, max_rows=40, dim=8):
    rows = draw(st.integers(min_rows, max_rows))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dim)).astype(np.float32) * 3


class TestFlatInvariants:
    @given(float_matrix())
    @settings(max_examples=30, deadline=None)
    def test_results_invariant_under_row_permutation(self, data):
        """Shuffling insertion order permutes ids but preserves the
        retrieved *vectors* (modulo exact ties)."""
        index_a = FlatIndex(8)
        index_a.add(data)
        perm = np.random.default_rng(0).permutation(len(data))
        index_b = FlatIndex(8)
        index_b.add(data[perm])
        query = data[:1]
        res_a = index_a.search(query, 3)
        res_b = index_b.search(query, 3)
        np.testing.assert_allclose(
            res_a.distances, res_b.distances, rtol=1e-5, atol=1e-5
        )

    @given(float_matrix())
    @settings(max_examples=30, deadline=None)
    def test_distances_match_reconstruction(self, data):
        index = FlatIndex(8)
        index.add(data)
        query = data[-1:]
        res = index.search(query, min(5, len(data)))
        for idx, dist in zip(res.ids[0], res.distances[0]):
            if idx < 0:
                continue
            vec = index.reconstruct(int(idx)).astype(np.float64)
            manual = ((vec - query[0]) ** 2).sum()
            assert dist == pytest.approx(manual, rel=1e-4, abs=1e-4)

    @given(float_matrix(), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_growing_k_extends_prefix(self, data, k):
        """top-k ids are a prefix of top-(k+3) ids (stable ordering)."""
        index = FlatIndex(8)
        index.add(data)
        query = data[:1]
        small = index.search(query, k).ids[0]
        large = index.search(query, k + 3).ids[0]
        np.testing.assert_array_equal(small, large[: len(small)])


class TestPQInvariants:
    @given(float_matrix(min_rows=40, max_rows=80))
    @settings(max_examples=10, deadline=None)
    def test_codes_within_range_and_decode_finite(self, data):
        pq = ProductQuantizer(8, m=2, nbits=4, seed=0)
        pq.train(data)
        codes = pq.encode(data)
        assert codes.max() < 16
        decoded = pq.decode(codes)
        assert np.isfinite(decoded).all()

    @given(float_matrix(min_rows=40, max_rows=80))
    @settings(max_examples=10, deadline=None)
    def test_quantization_is_idempotent(self, data):
        """Encoding a decoded vector reproduces the same code."""
        pq = ProductQuantizer(8, m=2, nbits=4, seed=0)
        pq.train(data)
        codes = pq.encode(data[:10])
        recoded = pq.encode(pq.decode(codes))
        np.testing.assert_array_equal(codes, recoded)

    @given(float_matrix(min_rows=40, max_rows=80))
    @settings(max_examples=10, deadline=None)
    def test_adc_self_distance_is_quantization_error(self, data):
        pq = ProductQuantizer(8, m=2, seed=0)
        pq.train(data)
        codes = pq.encode(data[:5])
        adc = pq.adc_distances(data[:5], codes)
        decoded = pq.decode(codes).astype(np.float64)
        for i in range(5):
            err = ((data[i] - decoded[i]) ** 2).sum()
            assert adc[i, i] == pytest.approx(err, rel=1e-4, abs=1e-4)
