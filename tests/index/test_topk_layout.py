"""Top-k kernels under mixed dtypes and non-contiguous layouts.

The top-k family declares ``num::any`` input contracts: distances may
arrive as float64 (f64 accumulators in PQ scans) or as views — Fortran
blocks, transposed score matrices, strided slices.  These tests assert
the kernels are *value*-driven: the same scores in any dtype/layout
must produce bit-identical ids and distances to the contiguous-float32
baseline.  Inputs are generated as float32 first so the f64 upcast is
exact and "bit-identical" is well-defined.
"""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.topk import block_topk, blockwise_topk, merge_topk

NQ = 6
K = 4


def scores(seed=0, nq=NQ, n=40):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(nq, n)).astype(np.float32)


def topk_pair(seed, width, k=K, offset=0):
    """A padded ``(ids, distances)`` top-k set built from fresh scores."""
    return block_topk(scores(seed=seed, n=width), k, id_offset=offset)


LAYOUTS = {
    "float64": lambda a: a.astype(np.float64),
    "fortran": np.asfortranarray,
    "transposed_view": lambda a: np.ascontiguousarray(a.T).T,
    "strided": lambda a: np.repeat(a, 2, axis=1)[:, ::2],
}


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
class TestBlockTopk:
    def test_matches_contiguous_float32(self, layout):
        block = scores()
        ids, dist = block_topk(block, K, id_offset=100)
        vids, vdist = block_topk(LAYOUTS[layout](block), K, id_offset=100)
        np.testing.assert_array_equal(vids, ids)
        np.testing.assert_array_equal(
            vdist.astype(np.float32), dist.astype(np.float32)
        )
        assert vids.dtype == np.int64

    def test_narrow_block_padding_survives_layout(self, layout):
        block = scores(n=2)  # narrower than k: pads with -1 / inf
        ids, _ = block_topk(block, K)
        vids, _ = block_topk(LAYOUTS[layout](block), K)
        np.testing.assert_array_equal(vids, ids)
        assert (vids[:, 2:] == -1).all()


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
class TestMergeTopk:
    def test_matches_contiguous_float32(self, layout):
        ids_a, d_a = topk_pair(1, 30, offset=0)
        ids_b, d_b = topk_pair(2, 30, offset=30)
        ids, dist = merge_topk(ids_a, d_a, ids_b, d_b, K)
        mutate = LAYOUTS[layout]
        vids, vdist = merge_topk(
            ids_a if layout == "float64" else mutate(ids_a),
            mutate(d_a),
            ids_b if layout == "float64" else mutate(ids_b),
            mutate(d_b),
            K,
        )
        np.testing.assert_array_equal(vids, ids)
        np.testing.assert_array_equal(
            vdist.astype(np.float32), dist.astype(np.float32)
        )

    def test_mixed_dtype_sides_agree(self, layout):
        # One side f32, the other f64: ranking is by value, not dtype.
        ids_a, d_a = topk_pair(3, 25, offset=0)
        ids_b, d_b = topk_pair(4, 25, offset=25)
        ids, dist = merge_topk(ids_a, d_a, ids_b, d_b, K)
        vids, vdist = merge_topk(
            ids_a, d_a.astype(np.float64), ids_b, LAYOUTS[layout](d_b), K
        )
        np.testing.assert_array_equal(vids, ids)
        np.testing.assert_array_equal(
            vdist.astype(np.float32), dist.astype(np.float32)
        )


class TestBlockwiseTopk:
    def test_fortran_blocks_match_contiguous(self):
        all_scores = scores(seed=5, n=64)

        def contiguous(start, stop):
            return all_scores[:, start:stop]

        def fortran(start, stop):
            return np.asfortranarray(all_scores[:, start:stop])

        ids, dist = blockwise_topk(contiguous, 64, K, NQ, block_size=16)
        vids, vdist = blockwise_topk(fortran, 64, K, NQ, block_size=16)
        np.testing.assert_array_equal(vids, ids)
        np.testing.assert_array_equal(vdist, dist)

    def test_float64_blocks_match_contiguous(self):
        all_scores = scores(seed=6, n=48)

        def f32(start, stop):
            return all_scores[:, start:stop]

        def f64(start, stop):
            return all_scores[:, start:stop].astype(np.float64)

        ids, dist = blockwise_topk(f32, 48, K, NQ, block_size=10)
        vids, vdist = blockwise_topk(f64, 48, K, NQ, block_size=10)
        np.testing.assert_array_equal(vids, ids)
        np.testing.assert_array_equal(
            vdist.astype(np.float32), dist.astype(np.float32)
        )

    def test_block_size_invariance_under_f64(self):
        all_scores = scores(seed=7, n=33)

        def f64(start, stop):
            return all_scores[:, start:stop].astype(np.float64)

        whole = blockwise_topk(f64, 33, K, NQ, block_size=33)
        chunked = blockwise_topk(f64, 33, K, NQ, block_size=7)
        np.testing.assert_array_equal(chunked[0], whole[0])
        np.testing.assert_array_equal(chunked[1], whole[1])


class TestFlatSearchEndToEnd:
    def test_f64_queries_equal_f32(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(60, 8)).astype(np.float32)
        index = FlatIndex(8, block_size=16)
        index.add(data)
        queries = rng.normal(size=(5, 8)).astype(np.float32)
        expected = index.search(queries, K)
        got = index.search(queries.astype(np.float64), K)
        np.testing.assert_array_equal(got.ids, expected.ids)
        np.testing.assert_array_equal(got.distances, expected.distances)
