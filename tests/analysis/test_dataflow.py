"""Dataflow engine tests: loop context, abstract values, unit boundaries."""

import ast

from repro.analysis.dataflow import (
    KIND_LIST,
    KIND_NDARRAY,
    KIND_SCALAR,
    analyze,
    iter_code_units,
    numpy_aliases,
)


def facts_for(source, name=None):
    """Analyse the named function (or the module body) of ``source``."""
    tree = ast.parse(source)
    aliases = numpy_aliases(tree)
    if name is None:
        return tree, analyze(tree, aliases)
    unit = next(
        u
        for u in iter_code_units(tree)
        if getattr(u, "name", None) == name
    )
    return unit, analyze(unit, aliases)


def find(unit, kind, pred=lambda n: True):
    """First node of ``kind`` under ``unit`` matching ``pred``."""
    for node in ast.walk(unit):
        if isinstance(node, kind) and pred(node):
            return node
    raise AssertionError(f"no {kind.__name__} matching predicate")


def np_call(unit, ctor):
    return find(
        unit,
        ast.Call,
        lambda n: isinstance(n.func, ast.Attribute) and n.func.attr == ctor,
    )


class TestLoopContext:
    SOURCE = (
        "import numpy as np\n"
        "def f(n):\n"
        "    for i in range(n):\n"
        "        a = np.zeros(3, dtype=np.float32)\n"
        "        for j in range(n):\n"
        "            b = np.ones(3, dtype=np.float32)\n"
    )

    def test_loop_depth_counts_enclosing_loops(self):
        unit, facts = facts_for(self.SOURCE, "f")
        assert facts.loop_depth(np_call(unit, "zeros")) == 1
        assert facts.loop_depth(np_call(unit, "ones")) == 2

    def test_while_counts_as_a_loop(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    while n:\n"
            "        a = np.zeros(3, dtype=np.float32)\n"
        )
        unit, facts = facts_for(src, "f")
        assert facts.loop_depth(np_call(unit, "zeros")) == 1

    def test_comprehension_is_not_a_loop(self):
        src = (
            "import numpy as np\n"
            "def g(n):\n"
            "    rows = [np.zeros(3, dtype=np.float32) for _ in range(n)]\n"
        )
        unit, facts = facts_for(src, "g")
        assert facts.loop_depth(np_call(unit, "zeros")) == 0

    def test_active_loop_vars(self):
        src = (
            "import numpy as np\n"
            "def f(arr: np.ndarray, n):\n"
            "    for i in range(n):\n"
            "        x = arr[i]\n"
            "    y = arr[0]\n"
        )
        unit, facts = facts_for(src, "f")
        inside = find(unit, ast.Subscript, lambda n: isinstance(n.slice, ast.Name))
        outside = find(
            unit, ast.Subscript, lambda n: isinstance(n.slice, ast.Constant)
        )
        assert "i" in facts.active_loop_vars(inside)
        assert facts.active_loop_vars(outside) == frozenset()


class TestAbstractValues:
    def test_default_ctor_is_float64(self):
        unit, facts = facts_for(
            "import numpy as np\ndef f():\n    a = np.zeros(3)\n", "f"
        )
        value = facts.value_of(np_call(unit, "zeros"))
        assert (value.kind, value.dtype) == (KIND_NDARRAY, "float64")

    def test_dtype_kwarg_and_astype_flow_through_assignment(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    a = np.zeros(3, dtype=np.float32)\n"
            "    b = a.astype(np.float64)\n"
            "    return b\n"
        )
        unit, facts = facts_for(src, "f")
        returned = find(unit, ast.Return).value
        value = facts.value_of(returned)
        assert (value.kind, value.dtype) == (KIND_NDARRAY, "float64")

    def test_binop_promotion_float32_times_float64(self):
        src = (
            "import numpy as np\n"
            "def f(v: np.ndarray):\n"
            "    a = v.astype(np.float32)\n"
            "    return a * np.float64(2.0)\n"
        )
        unit, facts = facts_for(src, "f")
        binop = find(unit, ast.BinOp)
        value = facts.value_of(binop)
        assert (value.kind, value.dtype) == (KIND_NDARRAY, "float64")

    def test_annotation_seeds_parameters(self):
        src = "import numpy as np\ndef f(v: np.ndarray):\n    return v\n"
        unit, facts = facts_for(src, "f")
        returned = find(unit, ast.Return).value
        assert facts.value_of(returned).kind == KIND_NDARRAY

    def test_tolist_and_item(self):
        src = (
            "import numpy as np\n"
            "def f(v: np.ndarray):\n"
            "    a = v.tolist()\n"
            "    b = v.item()\n"
        )
        unit, facts = facts_for(src, "f")
        tolist = find(
            unit,
            ast.Call,
            lambda n: isinstance(n.func, ast.Attribute)
            and n.func.attr == "tolist",
        )
        item = find(
            unit,
            ast.Call,
            lambda n: isinstance(n.func, ast.Attribute) and n.func.attr == "item",
        )
        assert facts.value_of(tolist).kind == KIND_LIST
        assert facts.value_of(item).kind == KIND_SCALAR

    def test_in_loop_definition_reaches_loop_top(self):
        """Second pass: a definition made late in the body reaches early uses."""
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    for _ in range(n):\n"
            "        use = grown\n"
            "        grown = np.zeros(3, dtype=np.float32)\n"
        )
        unit, facts = facts_for(src, "f")
        use = find(
            unit,
            ast.Name,
            lambda n: n.id == "grown" and isinstance(n.ctx, ast.Load),
        )
        assert facts.value_of(use).kind == KIND_NDARRAY


class TestUnitBoundaries:
    SOURCE = (
        "import numpy as np\n"
        "def outer(n):\n"
        "    for _ in range(n):\n"
        "        def inner():\n"
        "            leaked = np.zeros(3, dtype=np.float32)\n"
    )

    def test_nested_def_body_is_opaque_to_the_outer_unit(self):
        unit, facts = facts_for(self.SOURCE, "outer")
        call = np_call(unit, "zeros")
        # The inner allocation must not inherit outer's loop depth.
        assert facts.loop_depth(call) == 0

    def test_nested_def_is_its_own_unit(self):
        tree = ast.parse(self.SOURCE)
        names = [getattr(u, "name", "<module>") for u in iter_code_units(tree)]
        assert names == ["<module>", "outer", "inner"]

    def test_numpy_alias_detection(self):
        tree = ast.parse("import numpy as xp\n")
        assert "xp" in numpy_aliases(tree)
