"""REP6xx gradient-flow tests: registration reachability + tape detachment."""

from repro.analysis import lint_paths, lint_source

from tests.analysis.fixtures import fixture_source

HOT_PATH = "src/repro/nn/fake.py"


def rules_of(findings):
    return [f.rule for f in findings]


class TestFixtures:
    def test_violations_trip_both_rules(self):
        findings = lint_source(
            fixture_source("grad_violations.py"), HOT_PATH, select=["REP6"]
        )
        assert rules_of(findings) == ["REP601", "REP601", "REP602"]
        assert {f.severity for f in findings} == {"error"}

    def test_clean_counterparts_stay_quiet(self):
        findings = lint_source(
            fixture_source("grad_clean.py"), HOT_PATH, select=["REP6"]
        )
        assert findings == []


class TestUnreachableParameter:
    def test_local_forwarded_to_self_attribute_is_registered(self):
        source = (
            "import numpy as np\n"
            "from repro.nn.layers import Module\n"
            "from repro.nn.tensor import Tensor\n"
            "class Net(Module):\n"
            "    def __init__(self):\n"
            "        w = Tensor(np.ones(3), requires_grad=True)\n"
            "        self.w = w\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP601"]) == []

    def test_non_module_class_is_ignored(self):
        source = (
            "import numpy as np\n"
            "from repro.nn.tensor import Tensor\n"
            "class Bag:\n"
            "    def __init__(self):\n"
            "        self.items = [Tensor(np.ones(3), requires_grad=True)]\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP601"]) == []

    def test_non_trainable_tensor_is_ignored(self):
        source = (
            "import numpy as np\n"
            "from repro.nn.layers import Module\n"
            "from repro.nn.tensor import Tensor\n"
            "class Net(Module):\n"
            "    def __init__(self):\n"
            "        self.cache = [Tensor(np.ones(3))]\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP601"]) == []


class TestDetachedForwardData:
    def test_cross_module_reachability(self, tmp_path):
        """.data read in another module's helper is found through the graph."""
        nn = tmp_path / "repro" / "nn"
        emb = tmp_path / "repro" / "emb"
        nn.mkdir(parents=True)
        emb.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (nn / "__init__.py").write_text("")
        (emb / "__init__.py").write_text("")
        (nn / "fake_layers.py").write_text(
            "class Module:\n    def parameters(self):\n        return []\n"
        )
        (emb / "ops.py").write_text(
            "def shift(x):\n    return x + float(x.data.mean())\n"
        )
        (emb / "model.py").write_text(
            "from repro.nn.fake_layers import Module\n"
            "from repro.emb import ops\n"
            "class Tower(Module):\n"
            "    def forward(self, x):\n"
            "        return ops.shift(x)\n"
        )
        findings = lint_paths([tmp_path], select=["REP602"])
        assert rules_of(findings) == ["REP602"]
        assert findings[0].path.endswith("repro/emb/ops.py")
        assert "reachable from forward" in findings[0].message

    def test_engine_modules_are_allowlisted(self):
        """layers.py itself may touch payloads; REP602 must not fire there."""
        findings = lint_source(
            fixture_source("grad_violations.py"),
            "src/repro/nn/layers.py",
            select=["REP602"],
        )
        assert findings == []

    def test_data_read_outside_the_forward_path_is_allowed(self):
        source = (
            "from repro.nn.layers import Module\n"
            "class Net(Module):\n"
            "    def forward(self, x):\n"
            "        return x\n"
            "    def export(self):\n"
            "        return self.weight.data\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP602"]) == []

    def test_noqa_suppresses_project_findings(self):
        source = (
            "from repro.nn.layers import Module\n"
            "class Net(Module):\n"
            "    def forward(self, x):\n"
            "        return x.data  # repro: noqa[REP602]\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP602"]) == []
