"""Shape/dtype abstract-interpretation tests for the dual-tower stack."""

import pytest

from repro.analysis import DualTowerSpec, ShapeError, check_dual_tower
from repro.core.config import EmbLookupConfig


def default_spec(**overrides):
    """The paper's 64-d configuration (alphabet of 40 symbols)."""
    return DualTowerSpec.from_config(EmbLookupConfig(), **overrides)


class TestAcceptance:
    def test_default_config_accepted(self):
        """The paper's 64-d default propagates cleanly to (N, 64) float32."""
        report = check_dual_tower(default_spec())
        assert report.output.shape == (None, 64)
        assert report.output.dtype == "float32"

    def test_trace_matches_charcnn_construction(self):
        """Pooling halves the length after layers 2 and 4: 32 -> 16 -> 8."""
        report = check_dual_tower(default_spec())
        stages = dict(report.stages)
        assert stages["one-hot"].shape == (None, 40, 32)
        assert stages["maxpool1 (k=2, s=2)"].shape == (None, 8, 16)
        assert stages["maxpool3 (k=2, s=2)"].shape == (None, 8, 8)
        assert stages["flatten"].shape == (None, 64)
        assert stages["concat"].shape == (None, 128)

    def test_pq_note_reports_compression(self):
        report = check_dual_tower(default_spec())
        assert any("256 B" in note and "8 B" in note for note in report.notes)

    def test_report_format_and_dict(self):
        report = check_dual_tower(default_spec())
        text = report.format()
        assert "OK: dual tower is shape/dtype consistent -> (N, 64) float32" in text
        payload = report.to_dict()
        assert payload["output"] == {"shape": [None, 64], "dtype": "float32"}
        assert len(payload["stages"]) == len(report.stages)

    def test_no_pq_when_compression_none(self):
        config = EmbLookupConfig(compression="none")
        report = check_dual_tower(DualTowerSpec.from_config(config))
        assert report.notes == ()


class TestRejection:
    def test_mis_sized_mlp_rejected(self):
        """A fusion layer pinned to the wrong width fails at fuse1."""
        with pytest.raises(ShapeError) as exc:
            check_dual_tower(default_spec(mlp_in=100))
        assert exc.value.stage == "fuse1"
        assert "128" in str(exc.value)

    def test_tower_dtype_mismatch_rejected(self):
        """A float64 semantic tower cannot concat with the float32 CNN."""
        with pytest.raises(ShapeError) as exc:
            check_dual_tower(default_spec(fasttext_dtype="float64"))
        assert exc.value.stage == "concat"

    def test_pq_indivisible_dim_rejected(self):
        with pytest.raises(ShapeError) as exc:
            check_dual_tower(default_spec(out_dim=60))
        assert exc.value.stage == "pq"

    def test_kernel_larger_than_input_rejected(self):
        """Enough pooling layers shrink the sequence below the kernel."""
        with pytest.raises(ShapeError):
            check_dual_tower(
                default_spec(max_length=2, cnn_layers=8, cnn_padding=0)
            )

    def test_invalid_scalars_rejected(self):
        with pytest.raises(ShapeError):
            check_dual_tower(default_spec(alphabet_size=0))
        with pytest.raises(ShapeError):
            check_dual_tower(default_spec(max_length=0))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ShapeError):
            check_dual_tower(default_spec(dtype="float16"))


class TestSpecConstruction:
    def test_from_config_inherits_dims(self):
        config = EmbLookupConfig(embedding_dim=128, max_length=16)
        spec = DualTowerSpec.from_config(config)
        assert spec.out_dim == 128
        assert spec.fasttext_dim == 128
        assert spec.max_length == 16
        assert spec.pq_m == config.pq_m

    def test_overrides_win(self):
        spec = default_spec(cnn_channels=16, pq_m=None)
        assert spec.cnn_channels == 16
        assert spec.pq_m is None
