"""Engine tests: noqa suppression, fingerprints, selection, file walking."""

import pytest

from repro.analysis import iter_python_files, lint_paths, lint_source

from tests.analysis.fixtures import fixture_source

HOT_PATH = "src/repro/nn/fake.py"


class TestNoqa:
    def test_suppression_forms(self):
        """Blanket and rule-scoped noqa suppress; a mismatched id does not."""
        findings = lint_source(fixture_source("noqa_suppressions.py"), HOT_PATH)
        assert len(findings) == 1
        assert findings[0].rule == "REP101"
        # The surviving finding is the one guarded by the wrong rule id.
        assert "REP999" in fixture_source("noqa_suppressions.py").splitlines()[
            findings[0].line - 1
        ]

    def test_noqa_is_case_insensitive(self):
        source = "import numpy as np\nx = np.zeros(3)  # REPRO: NOQA\n"
        assert lint_source(source, HOT_PATH) == []

    def test_scoped_noqa_leaves_other_rules(self):
        """noqa[REP102] on a line with both violations keeps the REP101."""
        source = (
            "import numpy as np\n"
            "x = np.zeros(3, dtype=np.float64)  # repro: noqa[REP101]\n"
        )
        findings = lint_source(source, HOT_PATH)
        assert [f.rule for f in findings] == ["REP102"]


class TestSyntaxError:
    def test_broken_file_yields_rep000(self):
        findings = lint_source("def broken(:\n", HOT_PATH)
        assert len(findings) == 1
        assert findings[0].rule == "REP000"
        assert findings[0].severity == "error"
        assert "syntax error" in findings[0].message


class TestSelection:
    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", HOT_PATH, select=["REP777"])

    def test_prefix_selection(self):
        """``REP1`` selects the whole dtype family."""
        findings = lint_source(
            fixture_source("dtype_violations.py"), HOT_PATH, select=["REP1"]
        )
        assert {f.rule for f in findings} == {"REP101", "REP102"}


class TestFingerprints:
    def test_stable_across_checkout_location(self):
        """Fingerprints hash the repro/... tail, not the as-invoked path."""
        source = fixture_source("dtype_violations.py")
        here = lint_source(source, "src/repro/nn/fake.py")
        elsewhere = lint_source(source, "/tmp/clone/repro/nn/fake.py")
        assert [f.fingerprint for f in here] == [f.fingerprint for f in elsewhere]

    def test_stable_under_line_churn(self):
        """Inserting unrelated lines above does not change the fingerprint."""
        base = "import numpy as np\nx = np.zeros(3)\n"
        shifted = "import numpy as np\n\n\n# padding\nx = np.zeros(3)\n"
        (a,) = lint_source(base, HOT_PATH)
        (b,) = lint_source(shifted, HOT_PATH)
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint

    def test_identical_lines_get_distinct_fingerprints(self):
        source = "import numpy as np\nx = np.zeros(3)\ny = np.zeros(3)\n"
        first, second = lint_source(source, HOT_PATH)
        assert first.line != second.line
        assert first.fingerprint != second.fingerprint


class TestFileWalking:
    def test_iter_python_files_expands_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["a.py", "b.py", "c.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_python_files([tmp_path / "missing"])

    def test_skips_pycache_and_hidden_directories(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "keep.cpython-311.py").write_text("x = 1\n")
        hidden = tmp_path / ".venv" / "lib"
        hidden.mkdir(parents=True)
        (hidden / "vendored.py").write_text("x = 1\n")
        nested_cache = tmp_path / "pkg" / "__pycache__"
        nested_cache.mkdir(parents=True)
        (nested_cache / "mod.py").write_text("x = 1\n")
        (tmp_path / ".hidden.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["keep.py"]

    def test_explicit_file_argument_is_always_included(self, tmp_path):
        hidden = tmp_path / ".hidden.py"
        hidden.write_text("x = 1\n")
        assert iter_python_files([hidden]) == [hidden]

    def test_deduplicates_overlapping_arguments(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        assert iter_python_files([tmp_path, target, tmp_path]) == [target]

    def test_lint_paths_end_to_end(self, tmp_path):
        """A file under a repro/nn/ directory on disk trips hot-path rules."""
        pkg = tmp_path / "repro" / "nn"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import numpy as np\nx = np.zeros(3)\n")
        (pkg / "good.py").write_text(
            "import numpy as np\nx = np.zeros(3, dtype=np.float32)\n"
        )
        findings = lint_paths([tmp_path])
        assert [f.rule for f in findings] == ["REP101"]
        assert findings[0].path.endswith("repro/nn/bad.py")
