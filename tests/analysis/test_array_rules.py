"""REP8xx static array-contract rules: grammar, pass, fixtures, CLI.

The interprocedural pass is exercised through ``lint_source`` exactly
like every other project rule: the fixture files carry a trailing
``# REP80x`` marker on each violating line, and the tests assert the
pass flags those lines — and nothing else.  The runtime half of the
family lives in ``tests/testing/test_contract_validator.py``; the
cross-validation test there asserts the two halves agree on the fixture
pair.
"""

import pytest

from repro.analysis import PROJECT_RULES, RULES, lint_source
from repro.utils.contracts import (
    ArraySpec,
    ContractError,
    ScalarSpec,
    parse_contract,
)

from tests.analysis.fixtures import fixture_source

ARRAY_PATH = "src/repro/index/fake.py"


def array_findings(source, path=ARRAY_PATH):
    return lint_source(source, path=path, select=["REP8"])


class TestContractGrammar:
    def test_full_contract_parses(self):
        contract = parse_contract(
            "(nq, d) f32, k: int -> (nq, k) f32, (nq, k) i64"
        )
        queries, k = contract.params
        assert isinstance(queries, ArraySpec)
        assert queries.dims == ("nq", "d")
        assert queries.dtype == "f32"
        assert queries.layout == "C"
        assert isinstance(k, ScalarSpec) and k.kind == "int"
        assert [r.dims for r in contract.returns] == [("nq", "k")] * 2
        assert [r.dtype for r in contract.returns] == ["f32", "i64"]

    def test_named_params_and_layout_opt_out(self):
        contract = parse_contract("ids: (n,) i64::any, k: int -> None")
        ids = contract.params[0]
        assert ids.name == "ids"
        assert ids.dims == ("n",)
        assert ids.layout == "any"
        assert contract.returns is None

    def test_leading_ellipsis_and_wildcard_dims(self):
        contract = parse_contract("(..., d) num::any, (n, _) any -> any")
        assert contract.params[0].dims == ("...", "d")
        assert contract.params[1].dims == ("n", "_")
        assert contract.returns is None  # opaque 'any' return

    def test_bare_ellipsis_is_any_ndarray(self):
        contract = parse_contract("(...) any::any -> (...) any")
        assert contract.params[0].dims == ("...",)
        assert contract.returns[0].dims == ("...",)

    def test_integer_dims(self):
        contract = parse_contract("(3, d) f32 -> None")
        assert contract.params[0].dims == (3, "d")

    @pytest.mark.parametrize(
        "bad",
        [
            "(nq d) f32 -> None",  # missing comma
            "(nq, d) f99 -> None",  # unknown dtype token
            "(nq, d) f32",  # no arrow
            "(a, ..., b) f32 -> None",  # ellipsis must lead
            "(n,) f32 -> ",  # empty returns
            "(n,) f32 -> (n,) f32, None",  # mixed array/opaque returns
            "(n,) f32 -> (n,) f32 junk",  # trailing junk on a return spec
            "(n,) f32::F -> None",  # unknown layout
        ],
    )
    def test_rejects_malformed_contracts(self, bad):
        with pytest.raises(ContractError):
            parse_contract(bad)

    def test_decorator_rejects_param_name_mismatch(self):
        from repro.utils.contracts import array_contract

        with pytest.raises(ContractError):

            @array_contract("wrong: (n,) f32 -> None")
            def f(ids):
                return None

    def test_decorator_rejects_too_many_entries(self):
        from repro.utils.contracts import array_contract

        with pytest.raises(ContractError):

            @array_contract("(n,) f32, (m,) f32 -> None")
            def f(only):
                return None


class TestRegistry:
    def test_rules_registered_with_severities(self):
        for rule_id in ("REP801", "REP802", "REP803", "REP804"):
            assert PROJECT_RULES[rule_id].severity == "error"
        assert RULES["REP805"].severity == "warning"


class TestFixturePair:
    def test_every_marked_line_flagged(self):
        source = fixture_source("arrays_violations.py")
        findings = lint_source(
            source,
            path="repro/index/arrays_violations.py",
            select=["REP8"],
        )
        lines = source.splitlines()
        flagged = {(f.rule, f.line) for f in findings}
        expected = {
            (rule, number)
            for number, text in enumerate(lines, start=1)
            for rule in ("REP801", "REP802", "REP803", "REP804", "REP805")
            if f"# {rule}" in text
        }
        assert expected, "fixture lost its # REP80x markers"
        assert flagged == expected

    def test_clean_fixture_is_silent(self):
        findings = lint_source(
            fixture_source("arrays_clean.py"),
            path="repro/index/arrays_clean.py",
            select=["REP8"],
        )
        assert findings == []

    def test_noqa_suppresses_array_findings(self):
        source = fixture_source("arrays_violations.py").replace(
            "# REP802 float64 into an f32 kernel",
            "# repro: noqa[REP802] deliberate upcast",
        )
        findings = lint_source(
            source, path="repro/index/arrays_violations.py", select=["REP8"]
        )
        assert "REP802" not in {f.rule for f in findings}
        assert "REP801" in {f.rule for f in findings}


class TestMissingContractRule:
    def test_public_array_api_without_contract(self):
        findings = array_findings(
            "import numpy as np\n"
            "class Index:\n"
            "    def search(self, queries: np.ndarray, k: int):\n"
            "        return queries\n"
        )
        assert [f.rule for f in findings] == ["REP805"]
        assert "search" in findings[0].message

    def test_private_and_property_members_exempt(self):
        findings = array_findings(
            "import numpy as np\n"
            "class Index:\n"
            "    def _scan(self, queries: np.ndarray):\n"
            "        return queries\n"
            "    @property\n"
            "    def vectors(self) -> np.ndarray:\n"
            "        return self._v\n"
            "class _Private:\n"
            "    def search(self, queries: np.ndarray):\n"
            "        return queries\n"
        )
        assert findings == []

    def test_non_array_signature_exempt(self):
        findings = array_findings(
            "class Index:\n"
            "    def ntotal(self) -> int:\n"
            "        return 0\n"
        )
        assert findings == []

    def test_invalid_contract_reported(self):
        findings = array_findings(
            "import numpy as np\n"
            "from repro.utils.contracts import array_contract\n"
            "@array_contract('(nq d) f32 -> None')\n"
            "def rank(queries: np.ndarray):\n"
            "    return queries\n"
        )
        assert [f.rule for f in findings] == ["REP805"]
        assert "invalid array contract" in findings[0].message

    def test_outside_array_packages_exempt(self):
        findings = lint_source(
            "import numpy as np\n"
            "def helper(x: np.ndarray):\n"
            "    return x\n",
            path="src/repro/nn/fake.py",
            select=["REP8"],
        )
        assert findings == []


class TestInterproceduralPass:
    KERNEL = (
        "import numpy as np\n"
        "from repro.utils.contracts import array_contract\n"
        "@array_contract('(nq, d) f32, k: int -> (nq, k) f32')\n"
        "def rank(queries, k):\n"
        "    return np.ascontiguousarray(queries[:, :k])\n"
    )

    def test_keyword_arguments_checked(self):
        findings = array_findings(
            self.KERNEL
            + "def caller():\n"
            + "    q = np.zeros((2, 8))\n"
            + "    return rank(queries=q, k=3)\n"
        )
        assert [f.rule for f in findings] == ["REP802"]

    def test_facts_flow_through_locals(self):
        findings = array_findings(
            self.KERNEL
            + "def caller():\n"
            + "    q = np.zeros((2, 8), dtype=np.float32)\n"
            + "    t = q.T\n"
            + "    return rank(t, 3)\n"
        )
        assert {f.rule for f in findings} == {"REP803"}

    def test_contracted_returns_feed_downstream_calls(self):
        findings = array_findings(
            self.KERNEL
            + "@array_contract('(n,) f32 -> None')\n"
            + "def consume(row):\n"
            + "    return None\n"
            + "def caller():\n"
            + "    q = np.zeros((2, 8), dtype=np.float32)\n"
            + "    scores = rank(q, 3)\n"
            + "    return consume(scores)\n"
        )
        assert [f.rule for f in findings] == ["REP801"]

    def test_self_method_resolution(self):
        findings = array_findings(
            "import numpy as np\n"
            "from repro.utils.contracts import array_contract\n"
            "class Index:\n"
            "    @array_contract('(nq, d) f32, k: int -> (nq, k) f32')\n"
            "    def rank(self, queries, k):\n"
            "        return np.ascontiguousarray(queries[:, :k])\n"
            "    def _search(self):\n"
            "        q = np.zeros((2, 8))\n"
            "        return self.rank(q, 3)\n"
        )
        assert [f.rule for f in findings] == ["REP802"]

    def test_symbol_unification_catches_transpose(self):
        findings = array_findings(
            "import numpy as np\n"
            "from repro.utils.contracts import array_contract\n"
            "@array_contract('(a, b) f32::any, (b, a) f32::any -> None')\n"
            "def paired(x, y):\n"
            "    return None\n"
            "def caller():\n"
            "    q = np.zeros((3, 4), dtype=np.float32)\n"
            "    return paired(q, q)\n"
        )
        assert [f.rule for f in findings] == ["REP801"]

    def test_fresh_symbols_do_not_conflict(self):
        # Two independent call sites returning the same symbolic dim must
        # not be unified: fresh per-call symbols keep this silent.
        findings = array_findings(
            self.KERNEL
            + "@array_contract('(n,) f32::any, (n,) f32::any -> None')\n"
            + "def fold(a, b):\n"
            + "    return None\n"
            + "def caller(q1, q2):\n"
            + "    a = rank(q1, 3)\n"
            + "    b = rank(q2, 3)\n"
            + "    return fold(a[0], b[0])\n"
        )
        assert findings == []

    def test_narrow_int_arithmetic_scoped_to_array_packages(self):
        body = (
            "import numpy as np\n"
            "def remap(ids):\n"
            "    local = np.arange(6, dtype=np.int32)\n"
            "    return local * 8\n"
        )
        inside = array_findings(body)
        assert [f.rule for f in inside] == ["REP804"]
        outside = lint_source(
            body, path="src/repro/kg/fake.py", select=["REP8"]
        )
        assert outside == []

    def test_int64_arithmetic_clean(self):
        findings = array_findings(
            "import numpy as np\n"
            "def remap(ids):\n"
            "    local = np.arange(6, dtype=np.int64)\n"
            "    return local * 8 + 3\n"
        )
        assert findings == []


class TestRepoIsClean:
    def test_repo_has_no_new_rep8_findings(self):
        from pathlib import Path

        from repro.analysis import lint_paths, load_baseline, partition_findings

        root = Path(__file__).resolve().parents[2]
        findings = lint_paths([str(root / "src" / "repro")], select=["REP8"])
        baseline = load_baseline(str(root / "tools" / "lint_baseline.json"))
        new, _ = partition_findings(findings, baseline)
        assert new == []


class TestArraycheckCommand:
    def write_index_module(self, tmp_path, source):
        pkg = tmp_path / "repro" / "index"
        pkg.mkdir(parents=True)
        target = pkg / "module.py"
        target.write_text(source)
        return target

    def test_repo_passes_its_own_arraycheck(self, capsys):
        from pathlib import Path

        from repro.cli import main

        root = Path(__file__).resolve().parents[2]
        rc = main([
            "arraycheck", str(root / "src" / "repro"),
            "--baseline", str(root / "tools" / "lint_baseline.json"),
        ])
        assert rc == 0
        assert "arraycheck OK" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        self.write_index_module(
            tmp_path,
            "import numpy as np\n"
            "from repro.utils.contracts import array_contract\n"
            "@array_contract('(nq, d) f32 -> None')\n"
            "def rank(queries):\n"
            "    return None\n"
            "def caller():\n"
            "    return rank(np.zeros((2, 3)))\n",
        )
        rc = main(["arraycheck", str(tmp_path), "--no-baseline"])
        assert rc == 1
        assert "REP802" in capsys.readouterr().out

    def test_only_rep8_rules_run(self, tmp_path, capsys):
        from repro.cli import main

        # A dtype lint (REP101) must not surface through arraycheck.
        self.write_index_module(
            tmp_path, "import numpy as np\nx = np.zeros(3)\n"
        )
        rc = main(["arraycheck", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "arraycheck OK" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        from repro.cli import main

        self.write_index_module(
            tmp_path,
            "import numpy as np\n"
            "class Index:\n"
            "    def search(self, queries: np.ndarray):\n"
            "        return queries\n",
        )
        rc = main([
            "arraycheck", str(tmp_path), "--no-baseline", "--format", "json",
        ])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert [r["rule"] for r in document["findings"]] == ["REP805"]

    def test_missing_path_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["arraycheck", str(tmp_path / "nope"), "--no-baseline"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_lint_profile_arrays(self, tmp_path, capsys):
        from repro.cli import main

        self.write_index_module(
            tmp_path,
            "import numpy as np\n"
            "class Index:\n"
            "    def search(self, queries: np.ndarray):\n"
            "        return queries\n",
        )
        rc = main([
            "lint", str(tmp_path), "--profile", "arrays", "--no-baseline",
        ])
        assert rc == 1
        assert "REP805" in capsys.readouterr().out
