"""REP5xx perf-rule tests: fixture positives/negatives + scoping."""

from repro.analysis import lint_source

from tests.analysis.fixtures import fixture_source

HOT_PATH = "src/repro/index/fake.py"
COLD_PATH = "src/repro/lookup/fake.py"
GRADCHECK_PATH = "src/repro/nn/gradcheck.py"

PERF = ["REP5"]


def rules_of(findings):
    return [f.rule for f in findings]


class TestFixtures:
    def test_violations_trip_every_rule(self):
        findings = lint_source(
            fixture_source("perf_violations.py"), HOT_PATH, select=PERF
        )
        assert rules_of(findings) == [
            "REP501",  # np.ones inside the loop
            "REP501",  # np.concatenate growth
            "REP502",  # for row in matrix
            "REP503",  # table[j] at depth 2
            "REP503",  # table.tolist() at depth 2
            "REP504",  # float32 * float64
            "REP504",  # astype(float)
        ]

    def test_clean_counterparts_stay_quiet(self):
        findings = lint_source(
            fixture_source("perf_clean.py"), HOT_PATH, select=PERF
        )
        assert findings == []

    def test_growth_calls_get_the_quadratic_message(self):
        findings = lint_source(
            fixture_source("perf_violations.py"), HOT_PATH, select=PERF
        )
        concat = next(f for f in findings if "concatenate" in f.message)
        assert "O(n^2)" in concat.message

    def test_all_perf_findings_are_warnings(self):
        findings = lint_source(
            fixture_source("perf_violations.py"), HOT_PATH, select=PERF
        )
        assert {f.severity for f in findings} == {"warning"}


class TestScoping:
    def test_cold_paths_are_exempt(self):
        findings = lint_source(
            fixture_source("perf_violations.py"), COLD_PATH, select=PERF
        )
        assert findings == []

    def test_gradcheck_is_allowlisted(self):
        """Numerical differentiation is elementwise by design."""
        findings = lint_source(
            fixture_source("perf_violations.py"), GRADCHECK_PATH, select=PERF
        )
        assert findings == []

    def test_noqa_suppresses_perf_findings(self):
        source = (
            "import numpy as np\n"
            "def f(n):\n"
            "    for _ in range(n):\n"
            "        a = np.zeros(3, dtype=np.float32)  # repro: noqa[REP501]\n"
        )
        assert lint_source(source, HOT_PATH, select=PERF) == []


class TestDepthSensitivity:
    def test_itemwise_indexing_at_depth_one_is_allowed(self):
        """REP503 targets inner loops; a single loop level is fine."""
        source = (
            "import numpy as np\n"
            "def f(arr: np.ndarray, n):\n"
            "    total = 0.0\n"
            "    for i in range(n):\n"
            "        total += float(arr[i])\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP503"]) == []

    def test_alloc_outside_loops_is_allowed(self):
        source = (
            "import numpy as np\n"
            "def f(n):\n"
            "    out = np.zeros((n, 4), dtype=np.float32)\n"
            "    return out\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP501"]) == []

    def test_iteration_over_list_is_allowed(self):
        source = (
            "import numpy as np\n"
            "def f(arr: np.ndarray):\n"
            "    for value in arr.tolist():\n"
            "        yield value\n"
        )
        assert lint_source(source, HOT_PATH, select=["REP502"]) == []
