"""Import/call graph tests: resolution, cycles, class hierarchy, reach."""

from repro.analysis.graph import (
    ProjectContext,
    build_import_graph,
    module_name_for_path,
)


def graph_of(*sources):
    return build_import_graph(list(sources))


class TestModuleNames:
    def test_repro_tail(self):
        assert module_name_for_path("src/repro/index/pq.py") == "repro.index.pq"
        assert module_name_for_path("/clone/repro/nn/layers.py") == (
            "repro.nn.layers"
        )

    def test_package_init_names_the_package(self):
        assert module_name_for_path("src/repro/nn/__init__.py") == "repro.nn"


class TestImportResolution:
    def test_from_import_submodule_vs_attribute(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/nn/__init__.py", ""),
            ("repro/nn/functional.py", "def relu(x):\n    return x\n"),
            (
                "repro/nn/layers.py",
                "from repro.nn import functional\n"
                "from repro.nn.functional import relu\n",
            ),
        )
        # Both forms resolve to the submodule, not the package __init__.
        assert graph.runtime_imports("repro.nn.layers") == {
            "repro.nn.functional"
        }

    def test_relative_import(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/pkg/__init__.py", ""),
            ("repro/pkg/helper.py", ""),
            ("repro/pkg/mod.py", "from . import helper\n"),
        )
        assert graph.runtime_imports("repro.pkg.mod") == {"repro.pkg.helper"}

    def test_type_checking_imports_are_not_runtime(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py",
             "from typing import TYPE_CHECKING\n"
             "if TYPE_CHECKING:\n"
             "    from repro import b\n"),
            ("repro/b.py", ""),
        )
        assert graph.runtime_imports("repro.a") == set()
        typing_only = [
            e for e in graph.edges if e.src == "repro.a" and e.dst == "repro.b"
        ]
        assert typing_only and not typing_only[0].runtime

    def test_external_imports_are_ignored(self):
        graph = graph_of(("repro/a.py", "import numpy as np\nimport heapq\n"))
        assert graph.runtime_imports("repro.a") == set()


class TestCycles:
    def test_seeded_two_module_cycle_is_detected(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py", "from repro import b\n"),
            ("repro/b.py", "from repro import a\n"),
        )
        assert graph.find_cycles() == [["repro.a", "repro.b"]]
        (members, lineno, path) = graph.import_cycles_with_lines()[0]
        assert members == ["repro.a", "repro.b"]
        assert lineno == 1
        assert path == "repro/a.py"

    def test_acyclic_tree_has_no_cycles(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py", "from repro import b\n"),
            ("repro/b.py", ""),
        )
        assert graph.find_cycles() == []

    def test_typing_only_backedge_is_not_a_cycle(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py", "from repro import b\n"),
            ("repro/b.py",
             "from typing import TYPE_CHECKING\n"
             "if TYPE_CHECKING:\n"
             "    from repro import a\n"),
        )
        assert graph.find_cycles() == []


CALL_SOURCES = [
    ("repro/__init__.py", ""),
    ("repro/nn/__init__.py", ""),
    (
        "repro/nn/layers.py",
        "class Module:\n    def parameters(self):\n        return []\n",
    ),
    ("repro/emb/__init__.py", ""),
    ("repro/emb/util.py", "def shared():\n    return 1\n"),
    (
        "repro/emb/model.py",
        "from repro.nn.layers import Module\n"
        "from repro.emb import util\n"
        "\n"
        "class Base(Module):\n"
        "    def helper(self):\n"
        "        return util.shared()\n"
        "\n"
        "class Tower(Base):\n"
        "    def forward(self, x):\n"
        "        return self.helper()\n",
    ),
]


class TestCallGraph:
    def test_reachability_through_self_and_modules(self):
        project = ProjectContext(CALL_SOURCES)
        call_graph = project.call_graph
        reached = call_graph.reachable_from(
            {("repro.emb.model", "Tower.forward")}
        )
        # self.helper() resolves through the base class; util.shared()
        # resolves through the from-import binding across modules.
        assert ("repro.emb.model", "Base.helper") in reached
        assert ("repro.emb.util", "shared") in reached

    def test_module_subclass_detection_is_transitive(self):
        call_graph = ProjectContext(CALL_SOURCES).call_graph
        assert call_graph.is_module_subclass("repro.emb.model", "Tower")
        assert call_graph.is_module_subclass("repro.emb.model", "Base")

    def test_the_root_module_class_is_not_its_own_subclass(self):
        call_graph = ProjectContext(CALL_SOURCES).call_graph
        assert not call_graph.is_module_subclass("repro.nn.layers", "Module")

    def test_unrelated_class_is_not_a_module(self):
        sources = CALL_SOURCES + [
            ("repro/emb/other.py", "class Plain:\n    def forward(self):\n        return 0\n"),
        ]
        call_graph = ProjectContext(sources).call_graph
        assert not call_graph.is_module_subclass("repro.emb.other", "Plain")
