"""Baseline mechanism: write/load round-trip and new/known partitioning."""

import json

import pytest

from repro.analysis import (
    lint_source,
    load_baseline,
    partition_findings,
    write_baseline,
)

from tests.analysis.fixtures import fixture_source

HOT_PATH = "src/repro/nn/fake.py"


def findings_for_fixture():
    """The dtype fixture's findings (fingerprinted by the engine)."""
    return lint_source(fixture_source("dtype_violations.py"), HOT_PATH)


class TestRoundTrip:
    def test_write_then_load_recovers_fingerprints(self, tmp_path):
        findings = findings_for_fixture()
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        assert load_baseline(path) == frozenset(f.fingerprint for f in findings)

    def test_written_document_is_auditable(self, tmp_path):
        """Entries keep rule/path/line/message next to the fingerprint."""
        path = tmp_path / "baseline.json"
        write_baseline(findings_for_fixture(), path)
        document = json.loads(path.read_text())
        assert document["version"] == 1
        entry = document["findings"][0]
        assert set(entry) == {"fingerprint", "rule", "path", "line", "message"}

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == frozenset()

    @pytest.mark.parametrize(
        "payload",
        ['[1, 2, 3]', '{"version": 1}', '{"findings": {"not": "a list"}}',
         '{"findings": [{"rule": "REP101"}]}'],
    )
    def test_malformed_baseline_raises(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload)
        with pytest.raises(ValueError):
            load_baseline(path)


class TestPartition:
    def test_full_baseline_suppresses_everything(self, tmp_path):
        findings = findings_for_fixture()
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        new, known = partition_findings(findings, load_baseline(path))
        assert new == []
        assert known == findings

    def test_new_violation_escapes_baseline(self, tmp_path):
        """Adding one more violation after baselining surfaces exactly it."""
        path = tmp_path / "baseline.json"
        write_baseline(findings_for_fixture(), path)
        grown = lint_source(
            fixture_source("dtype_violations.py")
            + "\n\nimport numpy as np\nextra = np.linspace(0, 1)\n",
            HOT_PATH,
        )
        new, known = partition_findings(grown, load_baseline(path))
        assert len(known) == len(findings_for_fixture())
        assert [f.rule for f in new] == ["REP101"]
        assert "linspace" in new[0].message

    def test_empty_baseline_marks_all_new(self):
        findings = findings_for_fixture()
        new, known = partition_findings(findings, frozenset())
        assert new == findings
        assert known == []
