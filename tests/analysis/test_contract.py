"""Architecture-contract tests: TOML loading, layering, ARC00x findings."""

import pytest

from repro.analysis.contract import (
    ROOT_LAYER,
    ArchContract,
    check_contract,
    layer_of,
    load_contract,
)
from repro.analysis.graph import build_import_graph


def contract(layers, forbid_cycles=True):
    return ArchContract(
        root="repro",
        layers={k: frozenset(v) for k, v in layers.items()},
        forbid_cycles=forbid_cycles,
    )


def graph_of(*sources):
    return build_import_graph(list(sources))


class TestLoadContract:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "contract.toml"
        path.write_text(
            '[project]\nroot = "repro"\nforbid_cycles = false\n'
            "[layers]\nutils = []\nindex = [\"utils\"]\n"
        )
        loaded = load_contract(path)
        assert loaded.root == "repro"
        assert loaded.forbid_cycles is False
        assert loaded.allowed("index") == frozenset({"utils"})
        assert loaded.allowed("nope") is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_contract(tmp_path / "absent.toml")

    def test_missing_layers_table_raises(self, tmp_path):
        path = tmp_path / "contract.toml"
        path.write_text('[project]\nroot = "repro"\n')
        with pytest.raises(ValueError, match="layers"):
            load_contract(path)

    def test_undeclared_dependency_raises(self, tmp_path):
        path = tmp_path / "contract.toml"
        path.write_text('[layers]\nindex = ["ghost"]\n')
        with pytest.raises(ValueError, match="ghost"):
            load_contract(path)

    def test_repo_contract_is_valid(self):
        loaded = load_contract("tools/arch_contract.toml")
        assert loaded.root == "repro"
        assert "analysis" in loaded.layers


class TestLayerOf:
    def test_layers(self):
        assert layer_of("repro.index.pq", "repro") == "index"
        assert layer_of("repro.cli", "repro") == "cli"
        assert layer_of("repro", "repro") == ROOT_LAYER


class TestCheckContract:
    def test_clean_project_has_no_findings(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a/__init__.py", ""),
            ("repro/a/x.py", "from repro.b import y\n"),
            ("repro/b/__init__.py", ""),
            ("repro/b/y.py", ""),
        )
        assert check_contract(graph, contract({"a": ["b"], "b": []})) == []

    def test_layer_violation_is_arc001(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a/__init__.py", ""),
            ("repro/a/x.py", "from repro.b import y\n"),
            ("repro/b/__init__.py", ""),
            ("repro/b/y.py", ""),
        )
        findings = check_contract(graph, contract({"a": [], "b": []}))
        assert [f.rule for f in findings] == ["ARC001"]
        assert findings[0].severity == "error"
        assert findings[0].path == "repro/a/x.py"
        assert "'a' may not import from 'b'" in findings[0].message

    def test_runtime_cycle_is_arc002(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py", "from repro import b\n"),
            ("repro/b.py", "from repro import a\n"),
        )
        findings = check_contract(graph, contract({"a": ["b"], "b": ["a"]}))
        assert [f.rule for f in findings] == ["ARC002"]
        assert "repro.a -> repro.b -> repro.a" in findings[0].message

    def test_cycles_allowed_when_disabled(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py", "from repro import b\n"),
            ("repro/b.py", "from repro import a\n"),
        )
        conf = contract({"a": ["b"], "b": ["a"]}, forbid_cycles=False)
        assert check_contract(graph, conf) == []

    def test_undeclared_layer_is_arc003_once(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a.py", ""),
            ("repro/b/__init__.py", ""),
            ("repro/b/x.py", "from repro import a\n"),
            ("repro/b/y.py", "from repro import a\n"),
        )
        findings = check_contract(graph, contract({"a": []}))
        assert [f.rule for f in findings] == ["ARC003"]
        assert "'b'" in findings[0].message

    def test_typing_only_import_is_exempt(self):
        graph = graph_of(
            ("repro/__init__.py", ""),
            ("repro/a/__init__.py", ""),
            ("repro/a/x.py",
             "from typing import TYPE_CHECKING\n"
             "if TYPE_CHECKING:\n"
             "    from repro.b import y\n"),
            ("repro/b/__init__.py", ""),
            ("repro/b/y.py", ""),
        )
        assert check_contract(graph, contract({"a": [], "b": []})) == []
