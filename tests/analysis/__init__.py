"""Tests for the repro.analysis lint + shapecheck subsystem."""
