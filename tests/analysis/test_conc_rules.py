"""REP7xx concurrency-rule tests: fixture positives/negatives + scoping."""

from repro.analysis import lint_source

from tests.analysis.fixtures import fixture_source

SERVING_PATH = "src/repro/index/fake_conc.py"
LOCKORDER_PATH = "src/repro/index/fake_lockorder.py"
OFF_SERVING_PATH = "src/repro/core/fake_conc.py"

CONC = ["REP7"]


def rules_of(findings):
    return [f.rule for f in findings]


def rule_lines(findings):
    return [(f.rule, f.line) for f in findings]


class TestFixtures:
    def test_violations_trip_every_rule(self):
        findings = lint_source(
            fixture_source("conc_violations.py"), SERVING_PATH, select=CONC
        )
        assert rule_lines(findings) == [
            ("REP701", 21),  # Counter.bump RMW without the lock
            ("REP702", 28),  # bare acquire() with no try/finally
            ("REP706", 28),  # acquire() without timeout on serving path
            ("REP704", 35),  # lock through Pipe.send
            ("REP704", 36),  # lock through pickle.dumps
            ("REP705", 40),  # SharedMemory never closed
            ("REP706", 45),  # recv() without timeout
            ("REP706", 46),  # join() without timeout
        ]

    def test_clean_counterparts_stay_quiet(self):
        findings = lint_source(
            fixture_source("conc_clean.py"), SERVING_PATH, select=CONC
        )
        assert findings == []

    def test_lockorder_fixture_trips_both_cycles(self):
        findings = lint_source(
            fixture_source("lockorder_violations.py"),
            LOCKORDER_PATH,
            select=CONC,
        )
        assert rule_lines(findings) == [
            ("REP703", 21),  # InvertedPair.ab: alpha -> beta
            ("REP703", 26),  # InvertedPair.ba: beta -> alpha
            ("REP703", 40),  # Ledger.transfer -> _record under accounts
            ("REP703", 48),  # Ledger.audit: audit -> accounts
        ]

    def test_ordered_lockorder_counterpart_stays_quiet(self):
        findings = lint_source(
            fixture_source("lockorder_clean.py"), LOCKORDER_PATH, select=CONC
        )
        assert findings == []

    def test_severities_match_the_catalog(self):
        findings = lint_source(
            fixture_source("conc_violations.py"), SERVING_PATH, select=CONC
        )
        by_rule = {f.rule: f.severity for f in findings}
        assert by_rule["REP701"] == "error"
        assert by_rule["REP702"] == "error"
        assert by_rule["REP704"] == "warning"
        assert by_rule["REP705"] == "error"
        assert by_rule["REP706"] == "warning"

    def test_messages_name_the_offending_symbol(self):
        findings = lint_source(
            fixture_source("conc_violations.py"), SERVING_PATH, select=CONC
        )
        rep701 = next(f for f in findings if f.rule == "REP701")
        assert "hits" in rep701.message
        rep705 = next(f for f in findings if f.rule == "REP705")
        assert "seg" in rep705.message


class TestScoping:
    def test_rep706_is_serving_path_only(self):
        findings = lint_source(
            fixture_source("conc_violations.py"), OFF_SERVING_PATH, select=CONC
        )
        rules = rules_of(findings)
        assert "REP706" not in rules
        # The process-safety rules still apply off the serving path.
        assert "REP701" in rules
        assert "REP702" in rules
        assert "REP704" in rules
        assert "REP705" in rules

    def test_noqa_suppresses_conc_findings(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1  # repro: noqa[REP701] single-writer\n"
        )
        assert lint_source(source, SERVING_PATH, select=CONC) == []

    def test_guarded_write_needs_no_noqa(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
        )
        assert lint_source(source, SERVING_PATH, select=CONC) == []


class TestPrecision:
    def test_local_accumulators_are_not_shared_state(self):
        """REP701 targets self/parameter roots, not plain locals."""
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def count(self, items):\n"
            "        total = 0\n"
            "        for item in items:\n"
            "            total += item\n"
            "        return total\n"
        )
        assert lint_source(source, SERVING_PATH, select=["REP701"]) == []

    def test_str_join_is_not_a_blocking_join(self):
        source = (
            "def render(parts):\n"
            "    return ', '.join(parts)\n"
        )
        assert lint_source(source, SERVING_PATH, select=["REP706"]) == []

    def test_reentrant_same_lock_is_not_an_inversion(self):
        """Nesting one lock inside itself (sibling instances) is skipped."""
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def merge(self, other):\n"
            "        with self._lock:\n"
            "            with other._lock:\n"
            "                pass\n"
        )
        assert lint_source(source, LOCKORDER_PATH, select=["REP703"]) == []

    def test_escaped_segment_is_not_a_leak(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def adopt(registry, name):\n"
            "    seg = shared_memory.SharedMemory(name=name)\n"
            "    registry.adopt(seg)\n"
            "    return seg.size\n"
        )
        assert lint_source(source, SERVING_PATH, select=["REP705"]) == []

    def test_close_outside_finally_is_still_flagged(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def peek(name):\n"
            "    seg = shared_memory.SharedMemory(name=name)\n"
            "    data = bytes(seg.buf)\n"
            "    seg.close()\n"
            "    return data\n"
        )
        findings = lint_source(source, SERVING_PATH, select=["REP705"])
        assert rules_of(findings) == ["REP705"]
        assert "non-exception path" in findings[0].message
