"""Deliberate REP5xx perf violations (linted under a virtual hot path)."""

import numpy as np


def grows_array_in_loop(n: int) -> np.ndarray:
    out = np.zeros((0, 4), dtype=np.float32)
    for _ in range(n):
        row = np.ones((1, 4), dtype=np.float32)  # REP501: alloc per iteration
        out = np.concatenate([out, row], axis=0)  # REP501: O(n^2) growth
    return out


def iterates_ndarray(matrix: np.ndarray) -> float:
    total = 0.0
    for row in matrix:  # REP502: Python-level iteration over an ndarray
        total += float(row.sum())
    return total


def itemwise_inner_loop(table: np.ndarray) -> float:
    total = 0.0
    for _ in range(2):
        for j in range(3):
            total += float(table[j])  # REP503: loop-var indexing at depth 2
    return total


def tolist_in_inner_loop(table: np.ndarray) -> list:
    out = []
    for _ in range(2):
        for _ in range(3):
            out.append(table.tolist())  # REP503: per-iteration conversion
    return out


def upcasts_float32(vectors: np.ndarray) -> np.ndarray:
    v32 = vectors.astype(np.float32)
    scale = np.float64(2.0)
    return v32 * scale  # REP504: float32 x float64 arithmetic


def astype_builtin_float(vectors: np.ndarray) -> np.ndarray:
    return vectors.astype(float)  # REP504: builtin float is float64
