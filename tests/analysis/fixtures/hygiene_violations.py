"""Fixture: API-hygiene violations (REP401/REP402/REP403)."""


def swallow_everything(risky):
    """REP401: bare except hides SystemExit/KeyboardInterrupt."""
    try:
        return risky()
    except:
        return None


def accumulate(item, bucket=[], index={}):
    """Two REP402 hits: mutable defaults shared across calls."""
    bucket.append(item)
    index[item] = len(bucket)
    return bucket


def chatty(value):
    """REP403: print() in library code."""
    print(value)
    return value
