"""Fixture: dtype-discipline violations (REP101 implicit, REP102 float64)."""

import numpy as np


def implicit_constructors(n):
    """Four REP101 hits: constructors with no dtype kwarg."""
    a = np.zeros(n)
    b = np.arange(n)
    c = np.array([1.0, 2.0])
    d = np.empty((n, n))
    return a, b, c, d


def float64_leaks(n):
    """Three REP102 hits: explicit float64 in a hot path."""
    a = np.zeros(n, dtype=np.float64)
    b = np.ones(n, dtype="float64")
    c = a.astype(np.float64)
    return a, b, c
