"""Fixture: seeded randomness through repro.utils.rng (lints clean)."""

from repro.utils.rng import new_rng


def draw_seeded(n, seed):
    """All draws go through a seeded Generator: no REP301."""
    rng = new_rng(seed)
    return rng.normal(size=n), rng.integers(0, 10, size=n)
