"""Deliberate REP6xx gradient-flow violations (virtual hot path)."""

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class LeakyTower(Module):
    """Trainable tensors the optimizer will never see + a detached forward."""

    def __init__(self, dim: int):
        super().__init__()
        self.extras = []
        self.extras.append(
            Tensor(np.zeros((dim,), dtype=np.float32), requires_grad=True)  # REP601
        )
        bias = Tensor(np.ones((dim,), dtype=np.float32), requires_grad=True)  # REP601
        self._warm_up(bias)

    def _warm_up(self, tensor: Tensor) -> None:
        del tensor

    def forward(self, x: Tensor) -> Tensor:
        return self._shift(x)

    def _shift(self, x: Tensor) -> Tensor:
        return x + float(x.data.mean())  # REP602: detaches the tape
