"""Idiomatic counterparts to perf_violations.py; REP5xx must stay quiet."""

import numpy as np


def preallocated(n: int) -> np.ndarray:
    out = np.empty((n, 4), dtype=np.float32)
    for i in range(n):
        out[i] = 1.0
    return out


def vectorised_sum(matrix: np.ndarray) -> float:
    return float(matrix.sum())


def hoisted_tolist(table: np.ndarray) -> float:
    values = table.tolist()
    total = 0.0
    for _ in range(2):
        for value in values:
            total += value
    return total


def comprehension_alloc(n: int) -> list:
    # Comprehensions are amortised one-shot allocations, not loop bodies.
    return [np.zeros((4,), dtype=np.float32) for _ in range(n)]


def stays_float32(vectors: np.ndarray) -> np.ndarray:
    v32 = vectors.astype(np.float32)
    return v32 * np.float32(2.0)
