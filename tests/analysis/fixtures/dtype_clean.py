"""Fixture: dtype-disciplined numpy usage that must lint clean."""

import numpy as np


def explicit_constructors(n, prototype):
    """Explicit dtypes and dtype-inheriting *_like constructors."""
    a = np.zeros(n, dtype=np.float32)
    b = np.arange(n, dtype=np.int64)
    c = np.zeros_like(prototype)
    d = np.ones_like(prototype)
    return a, b, c, d
