"""Lint fixtures: deliberately good/bad sources read as text, never imported.

Each ``*_violations.py`` file trips one rule family; the paired
``*_clean.py`` file does the same work idiomatically and must lint clean.
Tests feed these through ``lint_source`` under virtual ``repro/...`` paths
(rules match on the path tail), so the fixtures can live here untouched.
"""

from pathlib import Path

FIXTURES_DIR = Path(__file__).parent


def fixture_source(name: str) -> str:
    """Read fixture ``name`` (e.g. ``"dtype_violations.py"``) as text."""
    return (FIXTURES_DIR / name).read_text(encoding="utf-8")
