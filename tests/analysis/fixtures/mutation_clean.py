"""Fixture: reads of tensor payloads that must lint clean (REP201)."""


def read_payloads(t):
    """Reading .data / .grad and calling methods on them is fine."""
    value = t.data.copy()
    gradient = t.grad
    norm = (t.data ** 2).sum()
    t.zero_grad()
    return value, gradient, norm
