"""Fixture: autograd-payload mutations (REP201) outside the engine."""


def clobber_payloads(t, update):
    """Five REP201 hits: write/augment/delete through .data / .grad."""
    t.data = update
    t.data[0] = 0.0
    t.data += update
    t.grad = None
    del t.grad
