"""Fixture: hygienic equivalents of the REP4xx violations (lints clean)."""


def swallow_narrowly(risky):
    """Named exception type instead of a bare except."""
    try:
        return risky()
    except ValueError:
        return None


def accumulate(item, bucket=None):
    """None-sentinel default instead of a shared mutable."""
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def quiet(value):
    """Return strings instead of printing them."""
    return f"value: {value}"
