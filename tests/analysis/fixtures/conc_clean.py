"""The same concurrency work as ``conc_violations.py``, done idiomatically.

Must produce zero REP7xx findings under ``src/repro/index/fake_conc.py``.
"""

import threading
from multiprocessing import shared_memory


class Counter:
    """Lock-owning class whose every shared write holds the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def bump(self):
        with self._lock:
            self.hits += 1

    def bump_more(self):
        with self._lock:
            self.misses += 1

    def guarded_acquire(self):
        if self._lock.acquire(timeout=1.0):
            try:
                self.hits = 0
            finally:
                self._lock.release()


def ship_state(conn, counter: Counter):
    # Only plain data crosses the pipe; the lock stays on this side.
    with counter._lock:
        snapshot = {"hits": counter.hits, "misses": counter.misses}
    conn.send(snapshot)
    return snapshot


def copy_segment(spec):
    seg = shared_memory.SharedMemory(name=spec.name)  # closed in finally
    try:
        return bytes(seg.buf)
    finally:
        seg.close()


def handoff_segment(registry, spec):
    seg = shared_memory.SharedMemory(name=spec.name)
    registry.adopt(seg)  # ownership escapes; the registry closes it
    return seg.size


def drain_bounded(conn, worker_thread):
    if conn.poll(1.0):
        msg = conn.recv()  # repro: noqa[REP706] readiness-checked via poll()
    else:
        msg = None
    worker_thread.join(timeout=1.0)
    return msg
