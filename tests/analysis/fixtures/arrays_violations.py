"""Seeded REP80x array-contract violations.

Each ``rank_*``/``*_narrow``/``narrow_*`` driver trips exactly one rule,
marked by a trailing ``# REP80x`` comment on the violating line.  The
static pass must flag every marked line when this file is linted under a
``repro/index/...`` virtual path, and executing the drivers under the
runtime validator must record the same rules (except the two static-only
cases: the bare ``remap_narrow`` arithmetic, which crosses no contracted
call, and the ``PublicScanner`` missing contract) — the REP8xx analogue
of the PR 7 lockorder fixture pair.
"""

import numpy as np

from repro.utils.contracts import array_contract


@array_contract("(nq, d) f32, k: int -> (nq, k) f32")
def rank_kernel(queries, k):
    return np.ascontiguousarray((queries * queries)[:, :k])


@array_contract("(a, b) f32::any, (a, b) f32::any -> (a, b) f32::any")
def paired_kernel(x, y):
    return x + y


@array_contract("(n,) i64 -> (n,) i64")
def remap_ids(ids):
    return ids * 8 + 3


def rank_flattened():
    queries = np.zeros((12,), dtype=np.float32)
    return rank_kernel(queries, 4)  # REP801 1-d into a (nq, d) kernel


def rank_transposed():
    queries = np.zeros((3, 4), dtype=np.float32)
    return paired_kernel(queries, queries.T)  # REP801 (a, b) meets (b, a)


def rank_upcast():
    queries = np.zeros((3, 4))
    return rank_kernel(queries, 2)  # REP802 float64 into an f32 kernel


def rank_fortran():
    queries = np.asfortranarray(np.ones((3, 4), dtype=np.float32))
    return rank_kernel(queries, 2)  # REP803 Fortran view into a C kernel


def remap_narrow():
    ids = np.arange(6, dtype=np.int64).astype(np.int32)
    return ids * 4  # REP804 narrow-int id arithmetic (static-only)


def narrow_ids():
    ids = np.arange(5, dtype=np.int32)
    return remap_ids(ids)  # REP804 int32 ids into an i64 contract


class PublicScanner:
    def project(self, vectors: np.ndarray) -> np.ndarray:  # REP805
        return vectors
