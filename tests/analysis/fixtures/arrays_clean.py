"""Contract-conforming mirror of ``arrays_violations.py``.

Same kernels, same call shapes — every driver passes arrays that satisfy
the declared contracts, so the static pass reports nothing and executing
the drivers under the runtime validator records nothing.
"""

import numpy as np

from repro.utils.contracts import array_contract


@array_contract("(nq, d) f32, k: int -> (nq, k) f32")
def rank_kernel(queries, k):
    return np.ascontiguousarray((queries * queries)[:, :k])


@array_contract("(a, b) f32::any, (a, b) f32::any -> (a, b) f32::any")
def paired_kernel(x, y):
    return x + y


@array_contract("(n,) i64 -> (n,) i64")
def remap_ids(ids):
    return ids * 8 + 3


def rank_correct():
    queries = np.zeros((3, 4), dtype=np.float32)
    return rank_kernel(queries, 2)


def paired_correct():
    x = np.zeros((3, 4), dtype=np.float32)
    y = np.ones((3, 4), dtype=np.float32)
    return paired_kernel(x, y.copy())


def remap_wide():
    ids = np.arange(6, dtype=np.int64)
    return remap_ids(ids)


class _PrivateScanner:
    # Private class: uncontracted ndarray signatures are fine here.
    def project(self, vectors: np.ndarray) -> np.ndarray:
        return vectors


class ContractedScanner:
    @array_contract("vectors: (n, d) f32::any -> (n, d) f32::any")
    def project(self, vectors: np.ndarray) -> np.ndarray:
        return vectors
