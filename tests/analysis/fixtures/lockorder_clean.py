"""The same two-lock workloads with one global acquisition order.

Every path takes ``alpha`` (or ``accounts``) strictly before ``beta``
(``audit``), so the lock-order graph is acyclic: zero REP703 findings,
and the runtime sanitizer records no violation when this executes.
"""

import threading


class OrderedPair:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()
        self.value = 0

    def ab(self):
        with self._alpha_lock:
            with self._beta_lock:
                self.value += 1

    def also_ab(self):
        with self._alpha_lock:
            with self._beta_lock:
                self.value -= 1


class Ledger:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        self.balance = 0
        self.entries = 0

    def transfer(self, amount):
        with self._accounts_lock:
            self.balance += amount
            self._record(amount)

    def _record(self, amount):
        with self._audit_lock:
            self.entries += 1

    def audit(self):
        with self._accounts_lock:  # same accounts -> audit order as transfer
            with self._audit_lock:
                return self.balance, self.entries
