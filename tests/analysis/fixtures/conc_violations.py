"""Deliberate REP701/702/704/705/706 violations (one per marked line).

Linted under the virtual path ``src/repro/index/fake_conc.py`` so the
serving-path scoping of REP706 applies.  Never imported.
"""

import pickle
import threading
from multiprocessing import shared_memory


class Counter:
    """Lock-owning class: every method is a REP701 thread-reachability seed."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def bump(self):
        self.hits += 1  # REP701: RMW on self without holding the lock

    def bump_guarded(self):
        with self._lock:
            self.misses += 1  # guarded: clean

    def legacy_acquire(self):
        self._lock.acquire()  # REP702 (+REP706: no timeout on serving path)
        self.hits = 0
        self._lock.release()


def ship_state(conn, counter: Counter):
    lock = threading.Lock()
    conn.send(lock)  # REP704: a lock through Pipe.send
    return pickle.dumps(lock)  # REP704: a lock through pickle.dumps


def leak_segment(spec):
    seg = shared_memory.SharedMemory(name=spec.name)  # REP705: never closed
    return seg.size


def drain(conn, worker_thread):
    msg = conn.recv()  # REP706: blocking recv without timeout
    worker_thread.join()  # REP706: join without timeout
    return msg
