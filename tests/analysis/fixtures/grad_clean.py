"""Idiomatic counterparts to grad_violations.py; REP6xx must stay quiet."""

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class RegisteredTower(Module):
    """Every trainable tensor reaches a plain self attribute."""

    def __init__(self, dim: int, bias: bool = True):
        super().__init__()
        self.weight = Tensor(
            np.ones((dim,), dtype=np.float32), requires_grad=True
        )
        self.bias = (
            Tensor(np.zeros((dim,), dtype=np.float32), requires_grad=True)
            if bias
            else None
        )
        scale = Tensor(
            np.full((dim,), 0.5, dtype=np.float32), requires_grad=True
        )
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        out = x * self.scale
        if self.bias is not None:
            out = out + self.bias
        return out

    def embed(self, x: Tensor) -> np.ndarray:
        # Boundary read *after* forward: deliberately outside the tape,
        # and not reachable from forward, so REP602 stays quiet.
        return self.forward(x).data.astype(np.float32)
