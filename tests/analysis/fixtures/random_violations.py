"""Fixture: unmanaged randomness (REP301) outside repro.utils.rng."""

import random

import numpy as np


def draw_everything(n):
    """REP301 hits: stdlib-random import + call, np.random.* calls."""
    a = random.random()
    b = np.random.rand(n)
    c = np.random.default_rng().normal(size=n)
    return a, b, c
