"""Fixture: noqa suppression forms against real violations.

Line 1 of the body: blanket suppression kills every rule on the line.
Line 2: rule-scoped suppression kills only the named rule.
Line 3: a mismatched rule id suppresses nothing.
"""

import numpy as np


def suppressed(n):
    """One surviving REP101 (the mismatched-id line); the rest suppressed."""
    a = np.zeros(n)  # repro: noqa
    b = np.zeros(n)  # repro: noqa[REP101]
    c = np.zeros(n)  # repro: noqa[REP999]
    return a, b, c
