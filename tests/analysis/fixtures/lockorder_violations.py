"""Seeded lock-order inversions: REP703 must flag them statically and the
runtime sanitizer must record the same cycle when this file is executed
(see ``tests/testing/test_sanitizer.py`` for the cross-validation).

``InvertedPair`` inverts directly inside one class; ``Ledger`` inverts
interprocedurally — ``transfer`` holds the accounts lock while a callee
takes the audit lock, and ``audit`` nests them the other way round.
"""

import threading


class InvertedPair:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()
        self.value = 0

    def ab(self):
        with self._alpha_lock:
            with self._beta_lock:  # REP703: alpha -> beta
                self.value += 1

    def ba(self):
        with self._beta_lock:
            with self._alpha_lock:  # REP703: beta -> alpha closes the cycle
                self.value -= 1


class Ledger:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        self.balance = 0
        self.entries = 0

    def transfer(self, amount):
        with self._accounts_lock:
            self.balance += amount
            self._record(amount)  # REP703: callee takes audit under accounts

    def _record(self, amount):
        with self._audit_lock:
            self.entries += 1

    def audit(self):
        with self._audit_lock:
            with self._accounts_lock:  # REP703: opposite nesting order
                return self.balance, self.entries
