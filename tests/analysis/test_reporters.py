"""Reporter tests: text grouping/footers and the JSON document shape."""

import json

from repro.analysis import lint_source, render_json, render_text, summarize

from tests.analysis.fixtures import fixture_source

HOT_PATH = "src/repro/nn/fake.py"


def sample_findings():
    """Mixed-severity findings from the hygiene + dtype fixtures."""
    return lint_source(
        fixture_source("hygiene_violations.py"), "src/repro/lookup/fake.py"
    ) + lint_source(fixture_source("dtype_violations.py"), HOT_PATH)


class TestSummarize:
    def test_counts_by_severity(self):
        counts = summarize(sample_findings())
        # hygiene: 1 error (REP401) + 3 warnings; dtype: 7 warnings.
        assert counts == {"total": 11, "errors": 1, "warnings": 10}

    def test_empty(self):
        assert summarize([]) == {"total": 0, "errors": 0, "warnings": 0}


class TestTextReporter:
    def test_groups_by_file_with_footer(self):
        report = render_text(sample_findings())
        assert "src/repro/lookup/fake.py" in report
        assert "src/repro/nn/fake.py" in report
        assert "11 new finding(s): 1 error(s), 10 warning(s)" in report

    def test_clean_run(self):
        assert render_text([]) == "no new findings"

    def test_baselined_counts_in_footer_only(self):
        findings = sample_findings()
        new, baselined = findings[:1], findings[1:]
        report = render_text(new, baselined)
        assert f"{len(baselined)} baselined finding(s) suppressed" in report
        assert render_text([], baselined) == (
            f"no new findings ({len(baselined)} baselined)"
        )


class TestJsonReporter:
    def test_document_shape(self):
        findings = sample_findings()
        document = json.loads(render_json(findings))
        assert document["version"] == 1
        assert document["summary"]["total"] == len(findings)
        assert document["summary"]["baselined"] == 0
        assert len(document["findings"]) == len(findings)
        record = document["findings"][0]
        assert set(record) == {
            "rule", "path", "line", "col", "severity", "message", "fingerprint",
        }
        assert record["fingerprint"]

    def test_baselined_count_in_summary(self):
        findings = sample_findings()
        document = json.loads(render_json(findings[:2], findings[2:]))
        assert document["summary"]["baselined"] == len(findings) - 2
        assert len(document["findings"]) == 2

    def test_zero_findings_document(self):
        document = json.loads(render_json([]))
        assert document["version"] == 1
        assert document["findings"] == []
        assert document["summary"] == {
            "total": 0,
            "errors": 0,
            "warnings": 0,
            "baselined": 0,
        }

    def test_identical_fingerprints_both_rendered(self):
        """Duplicated findings are reported twice, not silently merged."""
        (finding,) = lint_source(
            "import numpy as np\nx = np.zeros(3)\n", HOT_PATH
        )
        document = json.loads(render_json([finding, finding]))
        assert len(document["findings"]) == 2
        prints = [r["fingerprint"] for r in document["findings"]]
        assert prints[0] == prints[1]

    def test_severity_round_trips_through_json(self):
        """Severity constants serialise to their own literal strings."""
        from repro.analysis import Severity

        findings = sample_findings()
        document = json.loads(render_json(findings))
        severities = {r["severity"] for r in document["findings"]}
        assert severities == {Severity.ERROR, Severity.WARNING}
        assert severities == {"error", "warning"}
