"""Per-rule unit tests: each rule against positive and negative fixtures.

Fixtures are linted under *virtual* paths — rules scope themselves by the
``repro/...`` path tail, so ``src/repro/nn/fake.py`` exercises the
hot-path rules while ``src/repro/lookup/fake.py`` exercises the
everywhere-but-allowlist rules without touching real modules.
"""

import pytest

from repro.analysis import PROJECT_RULES, RULES, lint_source
from repro.analysis.rules import module_tail

from tests.analysis.fixtures import fixture_source

HOT_PATH = "src/repro/nn/fake.py"
COLD_PATH = "src/repro/lookup/fake.py"


def rule_ids(findings):
    """Sorted multiset of rule ids in ``findings``."""
    return sorted(f.rule for f in findings)


class TestRegistry:
    def test_all_documented_rules_registered(self):
        assert set(RULES) == {
            "REP101",
            "REP102",
            "REP201",
            "REP301",
            "REP401",
            "REP402",
            "REP403",
            "REP501",
            "REP502",
            "REP503",
            "REP504",
            "REP601",
            "REP702",
            "REP704",
            "REP705",
            "REP706",
            "REP805",
        }
        assert set(PROJECT_RULES) == {
            "REP602",
            "REP701",
            "REP703",
            "REP801",
            "REP802",
            "REP803",
            "REP804",
        }

    def test_registry_keys_match_instances(self):
        for rule_id, rule in {**RULES, **PROJECT_RULES}.items():
            assert rule.rule_id == rule_id
            assert rule.description

    def test_module_tail(self):
        assert module_tail("src/repro/nn/layers.py") == "repro/nn/layers.py"
        assert module_tail("/abs/path/repro/index/pq.py") == "repro/index/pq.py"
        assert module_tail("not_in_package.py") == "not_in_package.py"


class TestDtypeRules:
    def test_implicit_dtype_flagged_in_hot_path(self):
        findings = lint_source(
            fixture_source("dtype_violations.py"), HOT_PATH, select=["REP101"]
        )
        assert rule_ids(findings) == ["REP101"] * 4

    def test_float64_leak_flagged_in_hot_path(self):
        findings = lint_source(
            fixture_source("dtype_violations.py"), HOT_PATH, select=["REP102"]
        )
        assert rule_ids(findings) == ["REP102"] * 3

    def test_clean_fixture_passes(self):
        findings = lint_source(fixture_source("dtype_clean.py"), HOT_PATH)
        assert findings == []

    def test_dtype_rules_skip_cold_paths(self):
        """Outside nn/index/embedding the same source is not a finding."""
        findings = lint_source(
            fixture_source("dtype_violations.py"),
            COLD_PATH,
            select=["REP101", "REP102"],
        )
        assert findings == []

    def test_gradcheck_is_float64_allowlisted(self):
        findings = lint_source(
            fixture_source("dtype_violations.py"),
            "src/repro/nn/gradcheck.py",
            select=["REP102"],
        )
        assert findings == []


class TestMutationRule:
    def test_all_mutation_forms_flagged(self):
        findings = lint_source(
            fixture_source("mutation_violations.py"), COLD_PATH, select=["REP201"]
        )
        assert rule_ids(findings) == ["REP201"] * 5

    def test_reads_not_flagged(self):
        findings = lint_source(fixture_source("mutation_clean.py"), COLD_PATH)
        assert findings == []

    def test_engine_modules_allowlisted(self):
        findings = lint_source(
            fixture_source("mutation_violations.py"),
            "src/repro/nn/optim.py",
            select=["REP201"],
        )
        assert findings == []

    def test_severity_is_error(self):
        findings = lint_source(
            fixture_source("mutation_violations.py"), COLD_PATH, select=["REP201"]
        )
        assert all(f.severity == "error" for f in findings)


class TestRawRandomRule:
    def test_raw_randomness_flagged(self):
        findings = lint_source(
            fixture_source("random_violations.py"), COLD_PATH, select=["REP301"]
        )
        assert rule_ids(findings) == ["REP301"] * 4

    def test_seeded_rng_usage_clean(self):
        findings = lint_source(fixture_source("random_clean.py"), COLD_PATH)
        assert findings == []

    def test_rng_module_allowlisted(self):
        findings = lint_source(
            fixture_source("random_violations.py"),
            "src/repro/utils/rng.py",
            select=["REP301"],
        )
        assert findings == []

    def test_unrelated_random_attribute_not_flagged(self):
        """``rng.random()`` on a Generator is fine — only the module is bad."""
        source = "def draw(rng):\n    return rng.random()\n"
        assert lint_source(source, COLD_PATH, select=["REP301"]) == []

    def test_import_order_does_not_matter(self):
        """stdlib-random calls are caught even when numpy.random is imported
        after ``import random`` (regression: flag must accumulate)."""
        source = (
            "import random\n"
            "import numpy.random\n"
            "x = random.choice([1, 2])\n"
        )
        findings = lint_source(source, COLD_PATH, select=["REP301"])
        # Two imports + one call.
        assert rule_ids(findings) == ["REP301"] * 3


class TestHygieneRules:
    def test_hygiene_violations_flagged(self):
        findings = lint_source(fixture_source("hygiene_violations.py"), COLD_PATH)
        assert rule_ids(findings) == ["REP401", "REP402", "REP402", "REP403"]

    def test_hygiene_clean_fixture_passes(self):
        findings = lint_source(fixture_source("hygiene_clean.py"), COLD_PATH)
        assert findings == []

    def test_print_allowed_in_cli(self):
        source = "def show(x):\n    print(x)\n"
        assert lint_source(source, "src/repro/cli.py", select=["REP403"]) == []
        assert len(lint_source(source, COLD_PATH, select=["REP403"])) == 1

    @pytest.mark.parametrize(
        "source",
        [
            "def f(x, cache={}):\n    return cache\n",
            "def f(x, *, seen=[]):\n    return seen\n",
            "def f(x, bucket=list()):\n    return bucket\n",
        ],
    )
    def test_mutable_default_forms(self, source):
        assert len(lint_source(source, COLD_PATH, select=["REP402"])) == 1

    def test_none_default_not_flagged(self):
        source = "def f(x, bucket=None):\n    return bucket\n"
        assert lint_source(source, COLD_PATH, select=["REP402"]) == []
