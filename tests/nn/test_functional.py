"""Tests for repro.nn.functional (conv1d, pooling, softmax, dropout)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor


def leaf(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestConv1dForward:
    def test_identity_kernel(self):
        """A centred delta kernel with same padding reproduces the input."""
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 8)))
        w = Tensor(np.zeros((1, 1, 3)))
        w.data[0, 0, 1] = 1.0
        out = F.conv1d(x, w, padding=1)
        np.testing.assert_allclose(out.data, x.data, atol=1e-12)

    def test_output_length_no_padding(self):
        x = Tensor(np.zeros((1, 2, 10)))
        w = Tensor(np.zeros((4, 2, 3)))
        assert F.conv1d(x, w).shape == (1, 4, 8)

    def test_output_length_with_stride(self):
        x = Tensor(np.zeros((1, 2, 10)))
        w = Tensor(np.zeros((4, 2, 3)))
        assert F.conv1d(x, w, stride=2).shape == (1, 4, 4)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 5)))
        w = Tensor(np.zeros((2, 1, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = F.conv1d(x, w, b)
        assert (out.data[0, 0] == 1.0).all()
        assert (out.data[0, 1] == -2.0).all()

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 6))
        w = rng.normal(size=(3, 2, 3))
        out = F.conv1d(Tensor(x), Tensor(w)).data
        for co in range(3):
            for pos in range(4):
                expected = (x[0, :, pos : pos + 3] * w[co]).sum()
                assert out[0, co, pos] == pytest.approx(expected)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((1, 2, 5))), Tensor(np.zeros((1, 3, 3))))

    def test_kernel_longer_than_input_rejected(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((1, 1, 2))), Tensor(np.zeros((1, 1, 5))))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((2, 5))), Tensor(np.zeros((1, 1, 3))))


class TestConv1dGradients:
    def test_gradcheck_with_padding(self):
        x = leaf((2, 3, 7), seed=2, scale=0.5)
        w = leaf((2, 3, 3), seed=3, scale=0.5)
        b = leaf((2,), seed=4)
        assert gradcheck(
            lambda: (F.conv1d(x, w, b, padding=1) ** 2).sum() * 0.1, [x, w, b]
        )

    def test_gradcheck_with_stride(self):
        x = leaf((1, 2, 8), seed=5, scale=0.5)
        w = leaf((3, 2, 3), seed=6, scale=0.5)
        assert gradcheck(
            lambda: (F.conv1d(x, w, stride=2) ** 2).sum() * 0.1, [x, w]
        )


class TestMaxPool:
    def test_forward_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]))
        out = F.max_pool1d(x, kernel=2, stride=2)
        np.testing.assert_array_equal(out.data, [[[3.0, 5.0]]])

    def test_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]), requires_grad=True)
        F.max_pool1d(x, kernel=2, stride=2).sum().backward()
        np.testing.assert_array_equal(x.grad, [[[0.0, 1.0, 0.0, 1.0]]])

    def test_gradcheck(self):
        x = leaf((2, 3, 8), seed=7)
        assert gradcheck(lambda: F.max_pool1d(x, kernel=2).sum(), [x])

    def test_global_max_pool(self):
        x = Tensor(np.arange(12.0).reshape(1, 2, 6))
        out = F.global_max_pool1d(x)
        np.testing.assert_array_equal(out.data, [[5.0, 11.0]])

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            F.max_pool1d(Tensor(np.zeros((1, 1, 3))), kernel=5)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(8).normal(size=(4, 6)) * 10)
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_stable_under_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(9).normal(size=(3, 5)))
        log_sm = F.log_softmax(x, axis=1).data
        sm = F.softmax(x, axis=1).data
        np.testing.assert_allclose(log_sm, np.log(sm), atol=1e-10)

    def test_gradcheck_log_softmax(self):
        x = leaf((2, 4), seed=10)
        assert gradcheck(lambda: (F.log_softmax(x, axis=1) ** 2).sum() * 0.1, [x])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_zero_p_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_inverted_scaling_preserves_mean(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, True, np.random.default_rng(0))
