"""Tests for the contrastive-loss alternative (paper future work)."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.loss import contrastive_losses
from repro.nn.tensor import Tensor


def leaf(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestContrastiveLosses:
    def test_zero_when_pairs_ideal(self):
        anchor = Tensor(np.zeros((2, 3)))
        positive = Tensor(np.zeros((2, 3)))
        negative = Tensor(np.full((2, 3), 10.0))
        losses = contrastive_losses(anchor, positive, negative, margin=1.0)
        np.testing.assert_array_equal(losses.data, [0.0, 0.0])

    def test_value_decomposition(self):
        """loss = d(a,p) + max(margin - d(a,n), 0)."""
        anchor = Tensor(np.array([[0.0, 0.0]]))
        positive = Tensor(np.array([[1.0, 0.0]]))   # d_pos = 1
        negative = Tensor(np.array([[0.0, 0.5]]))   # d_neg = 0.25
        losses = contrastive_losses(anchor, positive, negative, margin=1.0)
        assert losses.data[0] == pytest.approx(1.0 + 0.75)

    def test_margin_validation(self):
        z = Tensor(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            contrastive_losses(z, z, z, margin=0.0)

    def test_gradcheck(self):
        a, p, n = leaf((4, 3), 1), leaf((4, 3), 2), leaf((4, 3), 3)
        assert gradcheck(
            lambda: contrastive_losses(a, p, n, margin=1.0).mean(), [a, p, n]
        )

    def test_differs_from_triplet_on_satisfied_margin(self):
        """Contrastive keeps pulling positives even when the triplet
        ordering is already satisfied — the behavioural difference."""
        anchor = Tensor(np.array([[0.0, 0.0]]))
        positive = Tensor(np.array([[2.0, 0.0]]))   # d_pos = 4
        negative = Tensor(np.array([[0.0, 10.0]]))  # d_neg = 100
        from repro.nn.loss import triplet_margin_losses

        triplet = triplet_margin_losses(anchor, positive, negative, margin=1.0)
        contrastive = contrastive_losses(anchor, positive, negative, margin=1.0)
        assert triplet.data[0] == 0.0
        assert contrastive.data[0] > 0.0


class TestPipelineIntegration:
    def test_contrastive_config_trains(self, tiny_kg):
        from repro.core.config import EmbLookupConfig
        from repro.core.pipeline import EmbLookup

        service = EmbLookup(
            EmbLookupConfig(
                epochs=1, triplets_per_entity=3, fasttext_epochs=0,
                compression="none", loss="contrastive", seed=0,
            )
        )
        service.fit(tiny_kg)
        assert len(service.lookup("germany", k=3)) == 3

    def test_unknown_loss_rejected(self):
        from repro.core.config import EmbLookupConfig

        with pytest.raises(ValueError):
            EmbLookupConfig(loss="infonce")
