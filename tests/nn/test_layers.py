"""Tests for repro.nn.layers (Module machinery and the layer zoo)."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.layers import (
    Conv1d,
    Dropout,
    EmbeddingBag,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.tensor import Tensor


class TestModule:
    def test_parameters_discovered_recursively(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        params = list(model.parameters())
        assert len(params) == 4  # 2 weights + 2 biases

    def test_named_parameters_have_paths(self):
        model = Sequential(Linear(4, 8, rng=0))
        names = [n for n, _ in model.named_parameters()]
        assert names == ["layer0.weight", "layer0.bias"]

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2, rng=0))
        model.eval()
        assert all(not m.training for m in model)
        model.train()
        assert all(m.training for m in model)

    def test_zero_grad_clears_all(self):
        lin = Linear(3, 2, rng=0)
        (lin(Tensor(np.ones((1, 3)))) ** 2).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_num_parameters(self):
        lin = Linear(3, 2, rng=0)
        assert lin.num_parameters() == 3 * 2 + 2


class TestStateDict:
    def test_roundtrip(self):
        a = Sequential(Linear(4, 4, rng=0), Tanh(), Linear(4, 2, rng=1))
        b = Sequential(Linear(4, 4, rng=2), Tanh(), Linear(4, 2, rng=3))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"][...] = 99.0
        assert not (lin.weight.data == 99.0).any()

    def test_missing_key_rejected(self):
        lin = Linear(2, 2, rng=0)
        with pytest.raises(KeyError):
            lin.load_state_dict({"weight": lin.weight.data})

    def test_unexpected_key_rejected(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["extra"] = np.zeros(3)
        with pytest.raises(KeyError):
            lin.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)


class TestLinear:
    def test_output_shape(self):
        lin = Linear(5, 3, rng=0)
        assert lin(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias_option(self):
        lin = Linear(5, 3, bias=False, rng=0)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_affine_identity(self):
        lin = Linear(3, 3, rng=0)
        lin.weight.data[...] = np.eye(3)
        lin.bias.data[...] = 1.0
        x = np.random.default_rng(0).normal(size=(2, 3))
        np.testing.assert_allclose(lin(Tensor(x)).data, x + 1.0)

    def test_gradcheck(self):
        lin = Linear(4, 3, rng=1)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4)))
        assert gradcheck(
            lambda: (lin(x) ** 2).sum() * 0.1, [lin.weight, lin.bias]
        )


class TestConv1dLayer:
    def test_same_padding_preserves_length(self):
        conv = Conv1d(4, 8, kernel_size=3, padding=1, rng=0)
        assert conv(Tensor(np.zeros((2, 4, 10)))).shape == (2, 8, 10)

    def test_deterministic_given_rng_seed(self):
        a = Conv1d(2, 2, 3, rng=7)
        b = Conv1d(2, 2, 3, rng=7)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestLayerNorm:
    def test_normalises_last_dim(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 8)) * 5 + 3)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self):
        ln = LayerNorm(5)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5)))
        assert gradcheck(lambda: (ln(x) ** 2).sum() * 0.1, [ln.gamma, ln.beta])


class TestEmbeddingBag:
    def test_mean_pooling(self):
        bag = EmbeddingBag(4, 2, rng=0)
        bag.weight.data[...] = np.array([[0, 0], [2, 2], [4, 4], [6, 6]], dtype=float)
        out = bag.forward_bags([[1, 3], [0]])
        np.testing.assert_array_equal(out.data, [[4.0, 4.0], [0.0, 0.0]])

    def test_empty_bag_is_zero(self):
        bag = EmbeddingBag(4, 3, rng=0)
        out = bag.forward_bags([[]])
        np.testing.assert_array_equal(out.data, np.zeros((1, 3)))

    def test_out_of_range_rejected(self):
        bag = EmbeddingBag(4, 2, rng=0)
        with pytest.raises(IndexError):
            bag.forward_bags([[4]])

    def test_gradcheck(self):
        bag = EmbeddingBag(6, 3, rng=1)
        assert gradcheck(
            lambda: (bag.forward_bags([[0, 1], [2, 2, 3]]) ** 2).sum(),
            [bag.weight],
        )


class TestDropoutLayer:
    def test_inert_in_eval(self):
        drop = Dropout(0.9, rng=0)
        drop.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_active_in_train(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((20, 20)))
        assert (drop(x).data == 0.0).any()
