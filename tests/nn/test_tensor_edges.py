"""Autograd edge cases: reverse ops, nested contexts, shared subgraphs."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor, no_grad


def leaf(shape, seed=0, shift=0.0):
    data = np.random.default_rng(seed).normal(size=shape) + shift
    return Tensor(data, requires_grad=True)


class TestReverseOperators:
    def test_rsub_value_and_grad(self):
        t = leaf((3,), 1)
        assert gradcheck(lambda: (5.0 - t).sum(), [t])

    def test_rtruediv_value_and_grad(self):
        t = leaf((3,), 2, shift=3.0)  # keep away from zero
        assert gradcheck(lambda: (6.0 / t).sum(), [t])

    def test_radd_rmul(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_array_equal((3 + t).data, [4.0, 5.0])
        np.testing.assert_array_equal((3 * t).data, [3.0, 6.0])


class TestGradModes:
    def test_no_grad_nested(self):
        t = leaf((2,), 3)
        with no_grad():
            with no_grad():
                inner = t * 2
            middle = inner + 1
        assert not middle.requires_grad
        # Recording resumes after the context exits.
        outer = t * 2
        assert outer.requires_grad

    def test_no_grad_restores_on_exception(self):
        t = leaf((2,), 4)
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert (t * 2).requires_grad

    def test_pow_non_scalar_exponent_rejected(self):
        t = leaf((2,), 5)
        with pytest.raises(TypeError):
            t ** t  # noqa: B018

    def test_backward_twice_accumulates(self):
        t = leaf((2,), 6)
        out = (t * 3).sum()
        out.backward()
        first = t.grad.copy()
        out2 = (t * 3).sum()
        out2.backward()
        np.testing.assert_allclose(t.grad, 2 * first)


class TestSharedSubgraphs:
    def test_shared_intermediate_gradient_summed(self):
        """An intermediate used by two heads receives both gradients."""
        t = leaf((3,), 7)

        def fn():
            shared = t.tanh()
            return (shared * 2).sum() + (shared * shared).sum()

        assert gradcheck(fn, [t])

    def test_constant_branch_contributes_no_grad(self):
        t = leaf((3,), 8)
        constant = Tensor(np.ones(3))
        ((t + constant) * constant).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(3))
        assert constant.grad is None

    def test_long_chain_memory_safe(self):
        """A 200-op chain backpropagates without recursion errors
        (backward is iterative, not recursive)."""
        t = leaf((4,), 9)
        x = t
        for _ in range(200):
            x = x * 1.01
        x.sum().backward()
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, np.full(4, 1.01**200), rtol=1e-6)


class TestDtypeCoercion:
    def test_int_input_promoted_to_float32(self):
        """Python scalars/lists coerce to the float32 library default."""
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float32

    def test_float32_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.data.dtype == np.float32

    def test_float64_opt_in_preserved(self):
        """Explicit float64 arrays are kept (gradcheck's opt-in path)."""
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.data.dtype == np.float64
