"""Tests for repro.nn.loss (triplet margin loss and friends)."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.loss import (
    cross_entropy_loss,
    mse_loss,
    pairwise_squared_distance,
    triplet_margin_loss,
    triplet_margin_losses,
)
from repro.nn.tensor import Tensor


def leaf(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestPairwiseSquaredDistance:
    def test_values(self):
        a = Tensor(np.array([[0.0, 0.0], [1.0, 1.0]]))
        b = Tensor(np.array([[3.0, 4.0], [1.0, 1.0]]))
        np.testing.assert_array_equal(
            pairwise_squared_distance(a, b).data, [25.0, 0.0]
        )


class TestTripletLoss:
    def test_zero_when_margin_satisfied(self):
        anchor = Tensor(np.zeros((2, 3)))
        positive = Tensor(np.zeros((2, 3)))
        negative = Tensor(np.full((2, 3), 10.0))
        assert triplet_margin_loss(anchor, positive, negative, margin=1.0).item() == 0.0

    def test_paper_equation_value(self):
        """L = max(||a-p||^2 - ||a-n||^2 + margin, 0)."""
        anchor = Tensor(np.array([[0.0, 0.0]]))
        positive = Tensor(np.array([[1.0, 0.0]]))   # d_pos = 1
        negative = Tensor(np.array([[0.0, 1.0]]))   # d_neg = 1
        loss = triplet_margin_loss(anchor, positive, negative, margin=0.5)
        assert loss.item() == pytest.approx(0.5)

    def test_per_triplet_losses_shape(self):
        losses = triplet_margin_losses(leaf((5, 4), 1), leaf((5, 4), 2), leaf((5, 4), 3))
        assert losses.shape == (5,)
        assert (losses.data >= 0).all()

    def test_margin_must_be_positive(self):
        z = Tensor(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            triplet_margin_loss(z, z, z, margin=0.0)

    def test_gradcheck(self):
        a, p, n = leaf((3, 4), 4), leaf((3, 4), 5), leaf((3, 4), 6)
        assert gradcheck(
            lambda: triplet_margin_loss(a, p, n, margin=1.0), [a, p, n]
        )

    def test_gradient_pulls_positive_closer(self):
        """One SGD step on the loss must reduce d(a, p) - d(a, n)."""
        rng = np.random.default_rng(7)
        a = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        p = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        n = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        def gap():
            d_pos = ((a.data - p.data) ** 2).sum()
            d_neg = ((a.data - n.data) ** 2).sum()
            return d_pos - d_neg
        before = gap()
        triplet_margin_loss(a, p, n, margin=5.0).backward()
        for t in (a, p, n):
            t.data -= 0.05 * t.grad
        assert gap() < before


class TestMseLoss:
    def test_zero_on_equal(self):
        x = Tensor(np.ones((2, 2)))
        assert mse_loss(x, Tensor(np.ones((2, 2)))).item() == 0.0

    def test_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert mse_loss(pred, target).item() == pytest.approx(5.0)

    def test_gradcheck(self):
        pred = leaf((4, 2), 8)
        target = Tensor(np.zeros((4, 2)))
        assert gradcheck(lambda: mse_loss(pred, target), [pred])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction(self):
        logits = Tensor(np.zeros((3, 4)))
        loss = cross_entropy_loss(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy_loss(Tensor(np.zeros(3)), np.array([0]))

    def test_gradcheck(self):
        logits = leaf((4, 3), 9)
        targets = np.array([0, 2, 1, 1])
        assert gradcheck(lambda: cross_entropy_loss(logits, targets), [logits])
