"""Tests for repro.nn.optim (SGD and Adam)."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.loss import mse_loss
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def minimise(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return abs(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert minimise(SGD([p], lr=0.1), p) < 1e-3

    def test_momentum_accelerates(self):
        p_plain = quadratic_param()
        p_momentum = quadratic_param()
        plain = minimise(SGD([p_plain], lr=0.01), p_plain, steps=50)
        fast = minimise(SGD([p_momentum], lr=0.01, momentum=0.9), p_momentum, steps=50)
        assert fast < plain

    def test_weight_decay_shrinks_weights(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        # Zero-gradient step: only decay acts.
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()  # no backward() ran
        assert p.data[0] == 1.0

    def test_invalid_momentum(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert minimise(Adam([p], lr=0.3), p, steps=300) < 1e-2

    def test_bias_correction_first_step(self):
        """First Adam step should move by ~lr regardless of gradient scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = Tensor(np.array([0.0]), requires_grad=True)
            opt = Adam([p], lr=0.1)
            p.grad = np.array([scale])
            opt.step()
            assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.9))

    def test_trains_small_regression(self):
        """End-to-end: Adam fits y = 2x + 1 with a linear model."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 1))
        y = 2.0 * x + 1.0
        model = Sequential(Linear(1, 8, rng=1), ReLU(), Linear(8, 1, rng=2))
        opt = Adam(model.parameters(), lr=0.01)
        first = None
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.05
