"""Tests for the autograd tensor: op semantics + gradient correctness."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor, concatenate, no_grad, stack


def leaf(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestForwardSemantics:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        np.testing.assert_array_equal((a + b).data, np.ones((2, 3)) + np.arange(3.0))

    def test_scalar_ops(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_array_equal((t * 2 + 1).data, [3.0, 5.0])
        np.testing.assert_array_equal((1 - t).data, [0.0, -1.0])
        np.testing.assert_array_equal((2 / t).data, [2.0, 1.0])

    def test_matmul(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)

    def test_pow(self):
        t = Tensor([2.0, 3.0])
        np.testing.assert_array_equal((t**2).data, [4.0, 9.0])

    def test_reductions(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.sum().item() == 15.0
        assert t.mean().item() == 2.5
        np.testing.assert_array_equal(t.sum(axis=0).data, [3.0, 5.0, 7.0])
        np.testing.assert_array_equal(t.max(axis=1).data, [2.0, 5.0])

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.transpose().shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(t[0].data, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(t[:, 1].data, [1.0, 4.0])

    def test_relu_clamps(self):
        t = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(t.relu().data, [0.0, 0.0, 2.0])

    def test_clamp_min(self):
        t = Tensor([-1.0, 0.5])
        np.testing.assert_array_equal(t.clamp_min(0.0).data, [0.0, 0.5])

    def test_concatenate(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        assert concatenate([a, b], axis=1).shape == (2, 5)

    def test_stack(self):
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        assert stack([a, b]).shape == (2, 3)


class TestBackwardBasics:
    def test_backward_requires_scalar(self):
        t = leaf((2, 3))
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_explicit_grad_shape_checked(self):
        t = leaf((2,))
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_grad_accumulates_across_uses(self):
        t = leaf((3,))
        out = (t + t).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones(3))

    def test_detach_blocks_gradient(self):
        t = leaf((3,))
        out = (t.detach() * 2).sum()
        # Graph is severed: no gradient path back to t.
        out.backward()
        assert t.grad is None

    def test_no_grad_context(self):
        t = leaf((3,))
        with no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        t = leaf((3,))
        (t * 3).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_broadcast_unbroadcast_gradient(self):
        a = leaf((2, 3), seed=1)
        b = leaf((3,), seed=2)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0))


class TestGradcheck:
    """Numerical verification of every differentiable op."""

    @pytest.mark.parametrize(
        "op_name",
        ["add", "sub", "mul", "div", "matmul"],
    )
    def test_binary_ops(self, op_name):
        a = leaf((3, 4), seed=1)
        b = leaf((4, 3) if op_name == "matmul" else (3, 4), seed=2, scale=0.5)
        b.data += 2.0  # keep divisors away from zero
        ops = {
            "add": lambda: (a + b).sum(),
            "sub": lambda: (a - b).sum(),
            "mul": lambda: ((a * b) ** 2).sum() * 0.1,
            "div": lambda: (a / b).sum(),
            "matmul": lambda: ((a @ b) ** 2).sum() * 0.01,
        }
        assert gradcheck(ops[op_name], [a, b])

    @pytest.mark.parametrize(
        "fn_name",
        ["relu", "tanh", "sigmoid", "exp", "sqrt", "log"],
    )
    def test_unary_ops(self, fn_name):
        a = leaf((3, 4), seed=3, scale=0.5)
        if fn_name in ("sqrt", "log"):
            a.data[...] = np.abs(a.data) + 0.5
        fn = lambda: getattr(a, fn_name)().sum()
        assert gradcheck(fn, [a])

    def test_pow(self):
        a = leaf((4,), seed=4)
        a.data[...] = np.abs(a.data) + 0.5
        assert gradcheck(lambda: (a**3).sum(), [a])

    def test_sum_axis_keepdims(self):
        a = leaf((3, 4), seed=5)
        assert gradcheck(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_mean_axis(self):
        a = leaf((3, 4), seed=6)
        assert gradcheck(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_max_axis(self):
        a = leaf((3, 5), seed=7)
        assert gradcheck(lambda: a.max(axis=1).sum(), [a])

    def test_reshape_transpose(self):
        a = leaf((3, 4), seed=8)
        assert gradcheck(
            lambda: (a.reshape(2, 6).transpose() ** 2).sum() * 0.1, [a]
        )

    def test_getitem(self):
        a = leaf((4, 4), seed=9)
        assert gradcheck(lambda: (a[1:3, ::2] ** 2).sum(), [a])

    def test_concatenate(self):
        a = leaf((2, 3), seed=10)
        b = leaf((2, 2), seed=11)
        assert gradcheck(
            lambda: (concatenate([a, b], axis=1) ** 2).sum() * 0.5, [a, b]
        )

    def test_stack(self):
        a = leaf((3,), seed=12)
        b = leaf((3,), seed=13)
        assert gradcheck(lambda: (stack([a, b]) ** 2).sum(), [a, b])

    def test_clamp_min(self):
        a = leaf((10,), seed=14)
        assert gradcheck(lambda: a.clamp_min(0.1).sum(), [a])

    def test_deep_chain(self):
        a = leaf((4, 4), seed=15, scale=0.3)
        def fn():
            x = a
            for _ in range(4):
                x = (x @ a).tanh()
            return x.sum()
        assert gradcheck(fn, [a], atol=1e-3)

    def test_diamond_graph(self):
        """Gradient through a reconverging (diamond) graph is summed."""
        a = leaf((3,), seed=16)
        def fn():
            left = a * 2
            right = a.tanh()
            return (left * right).sum()
        assert gradcheck(fn, [a])
