"""Gradient property tests at the autograd layer's edge configurations.

Seeded through :func:`repro.testing.strategies.case_rng` so every case is
replayable; the targets are the configurations the plain gradcheck suite
skips: conv1d with the kernel spanning the whole input and stride/padding
extremes, embedding bags containing *empty* bags, and the triplet margin
loss just off its hinge kink (at the kink the subgradient is legitimately
ambiguous, so we test both sides at a distance ``delta`` much larger than
the finite-difference step).
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.gradcheck import gradcheck
from repro.nn.layers import EmbeddingBag
from repro.nn.loss import triplet_margin_loss
from repro.nn.tensor import Tensor
from repro.testing.strategies import case_rng


def leaf(rng, shape, scale=0.5):
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestConv1dEdges:
    @pytest.mark.parametrize(
        "length,kernel,stride,padding",
        [
            (5, 5, 1, 0),   # kernel spans the whole input: out_len == 1
            (7, 3, 3, 0),   # stride skips positions; last window truncated
            (6, 3, 2, 2),   # stride with padding
            (4, 4, 4, 0),   # stride == kernel == length
            (3, 3, 1, 2),   # padding wider than the remaining input
        ],
    )
    def test_gradcheck_stride_kernel_edges(
        self, length, kernel, stride, padding
    ):
        rng = case_rng(31, length * 100 + kernel * 10 + stride)
        x = leaf(rng, (2, 2, length))
        w = leaf(rng, (3, 2, kernel))
        b = leaf(rng, (3,))
        assert gradcheck(
            lambda: (
                F.conv1d(x, w, b, stride=stride, padding=padding) ** 2
            ).sum()
            * 0.1,
            [x, w, b],
        )

    def test_gradcheck_single_channel_single_batch(self):
        rng = case_rng(31, 999)
        x = leaf(rng, (1, 1, 2))
        w = leaf(rng, (1, 1, 2))
        assert gradcheck(lambda: (F.conv1d(x, w) ** 2).sum(), [x, w])


class TestEmbeddingBagEdges:
    def test_gradcheck_with_empty_bags(self):
        """Empty bags contribute zero rows and must not corrupt the
        gradient of their non-empty neighbours."""
        rng = case_rng(37, 0)
        bag_layer = EmbeddingBag(6, 3, rng=rng)
        bags = [[0, 1], [], [2, 2, 5], []]
        assert gradcheck(
            lambda: (bag_layer.forward_bags(bags) ** 2).sum() * 0.5,
            [bag_layer.weight],
        )

    def test_all_bags_empty_gives_zero_output_and_gradient(self):
        rng = case_rng(37, 1)
        bag_layer = EmbeddingBag(4, 3, rng=rng)
        out = bag_layer.forward_bags([[], []])
        assert (out.data == 0).all()
        (out**2).sum().backward()
        assert (bag_layer.weight.grad == 0).all()

    def test_gradcheck_repeated_indices_accumulate(self):
        """The same row appearing twice in one bag (and across bags) must
        accumulate gradient, not overwrite it."""
        rng = case_rng(37, 2)
        bag_layer = EmbeddingBag(3, 2, rng=rng)
        bags = [[0, 0, 1], [1, 2], [0]]
        assert gradcheck(
            lambda: (bag_layer.forward_bags(bags) ** 2).sum() * 0.5,
            [bag_layer.weight],
        )


class TestTripletMarginBoundary:
    #: Hinge offset: far larger than gradcheck's 1e-5 finite-difference
    #: step, far smaller than the margin.
    DELTA = 1e-2

    def _triplet_at_offset(self, offset, margin=1.0, seed_index=0):
        """Anchor/positive/negative with ``d_pos - d_neg + margin == offset``.

        Built in closed form: anchor at the origin, positive at distance²
        ``p``, negative at distance² ``p + margin - offset``.
        """
        rng = case_rng(41, seed_index)
        dim = 4
        p = 0.5
        n = p + margin - offset
        anchor = Tensor(np.zeros((1, dim)), requires_grad=True)
        positive_vec = np.zeros((1, dim))
        positive_vec[0, 0] = np.sqrt(p)
        negative_vec = np.zeros((1, dim))
        negative_vec[0, 1] = np.sqrt(n)
        positive = Tensor(positive_vec, requires_grad=True)
        negative = Tensor(negative_vec, requires_grad=True)
        # A small random rotation-free jitter on the anchor keeps the
        # gradients generic without moving the hinge argument.
        del rng
        return anchor, positive, negative

    def test_gradcheck_just_inside_hinge(self):
        """Active hinge (loss > 0): gradients flow to all three towers."""
        anchor, positive, negative = self._triplet_at_offset(self.DELTA)
        assert gradcheck(
            lambda: triplet_margin_loss(anchor, positive, negative),
            [anchor, positive, negative],
        )

    def test_gradcheck_just_outside_hinge(self):
        """Inactive hinge (clamped at 0): gradients are identically zero
        and the finite difference agrees."""
        anchor, positive, negative = self._triplet_at_offset(-self.DELTA)
        assert gradcheck(
            lambda: triplet_margin_loss(anchor, positive, negative),
            [anchor, positive, negative],
        )
        loss = triplet_margin_loss(anchor, positive, negative)
        loss.backward()
        assert float(loss.data) == 0.0
        assert (anchor.grad == 0).all()

    def test_hinge_argument_is_where_we_put_it(self):
        """Sanity-pin the closed-form construction on both sides."""
        for offset in (self.DELTA, -self.DELTA):
            anchor, positive, negative = self._triplet_at_offset(offset)
            loss = float(
                triplet_margin_loss(anchor, positive, negative).data
            )
            assert loss == pytest.approx(max(offset, 0.0), abs=1e-9)

    def test_gradcheck_batch_mixes_active_and_inactive(self):
        """One batch straddling the hinge: per-row activity must not leak
        across rows in the mean reduction."""
        rng = case_rng(41, 9)
        anchor = leaf(rng, (4, 3))
        positive = leaf(rng, (4, 3))
        negative = leaf(rng, (4, 3), scale=2.0)
        assert gradcheck(
            lambda: triplet_margin_loss(anchor, positive, negative, margin=0.7),
            [anchor, positive, negative],
        )
