"""Tests for repro.nn.serialization and gradcheck helpers."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck, numerical_gradient
from repro.nn.layers import Linear
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


class TestStateDictIO:
    def test_roundtrip(self, tmp_path):
        state = {
            "layer.weight": np.random.default_rng(0).normal(size=(3, 4)),
            "layer.bias": np.zeros(3),
        }
        path = tmp_path / "model.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_state_dict({"w": np.ones(2)}, path)
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(tmp_path / "absent.npz")

    def test_module_level_roundtrip(self, tmp_path):
        a = Linear(4, 2, rng=0)
        save_state_dict(a.state_dict(), tmp_path / "lin.npz")
        b = Linear(4, 2, rng=1)
        b.load_state_dict(load_state_dict(tmp_path / "lin.npz"))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestGradcheckHelper:
    def test_detects_correct_gradient(self):
        p = Tensor(np.array([2.0, -1.0]), requires_grad=True)
        assert gradcheck(lambda: (p * p).sum(), [p])

    def test_numerical_gradient_of_square(self):
        p = Tensor(np.array([3.0]), requires_grad=True)
        numeric = numerical_gradient(lambda: (p * p).sum(), p)
        np.testing.assert_allclose(numeric, [6.0], rtol=1e-4)

    def test_flags_wrong_gradient(self):
        """A deliberately broken backward must be caught."""
        p = Tensor(np.array([2.0]), requires_grad=True)

        def broken():
            out = p * p
            # Sabotage: replace the recorded backward with a wrong one.
            out._backward = lambda grad: (grad * 999.0,)
            return out.sum()

        with pytest.raises(AssertionError, match="mismatch"):
            gradcheck(broken, [p])
