"""Tests for offline triplet mining."""

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.triplets.mining import Triplet, TripletMiner, TripletMiningConfig


class TestConfig:
    def test_defaults(self):
        cfg = TripletMiningConfig()
        assert cfg.triplets_per_entity == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"triplets_per_entity": 0},
            {"alias_fraction": -0.1},
            {"alias_fraction": 0, "typo_fraction": 0, "type_fraction": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TripletMiningConfig(**kwargs)


class TestMiner:
    def test_budget_respected(self, tiny_kg):
        miner = TripletMiner(tiny_kg, TripletMiningConfig(triplets_per_entity=10, seed=0))
        for entity_id in list(tiny_kg.entity_ids())[:20]:
            assert len(miner.mine_entity(entity_id)) <= 10

    def test_mine_covers_all_entities(self, tiny_kg):
        miner = TripletMiner(tiny_kg, TripletMiningConfig(triplets_per_entity=3, seed=0))
        triplets = miner.mine()
        anchors = {t.anchor for t in triplets}
        assert len(anchors) >= tiny_kg.num_entities * 0.9  # homonyms collapse

    def test_anchor_is_entity_label(self, tiny_kg):
        miner = TripletMiner(tiny_kg, TripletMiningConfig(triplets_per_entity=4, seed=0))
        germany_id = next(iter(tiny_kg.exact_lookup("germany")))
        triplets = miner.mine_entity(germany_id)
        assert all(t.anchor == "germany" for t in triplets)

    def test_alias_positives_present(self, tiny_kg):
        miner = TripletMiner(tiny_kg, TripletMiningConfig(triplets_per_entity=20, seed=0))
        germany_id = next(iter(tiny_kg.exact_lookup("germany")))
        positives = {t.positive for t in miner.mine_entity(germany_id)}
        assert "deutschland" in positives

    def test_negative_differs_from_anchor_and_positive(self, tiny_kg):
        miner = TripletMiner(tiny_kg, TripletMiningConfig(triplets_per_entity=8, seed=0))
        for triplet in miner.mine():
            assert triplet.negative != triplet.anchor
            assert triplet.negative != triplet.positive

    def test_negatives_are_entity_labels(self, tiny_kg):
        labels = {e.label for e in tiny_kg.entities()}
        miner = TripletMiner(tiny_kg, TripletMiningConfig(triplets_per_entity=5, seed=0))
        for triplet in miner.mine():
            assert triplet.negative in labels or triplet.negative.endswith(" negative")

    def test_typo_positives_fill_budget(self, tiny_kg):
        """With zero alias/type fractions the budget goes to typos."""
        cfg = TripletMiningConfig(
            triplets_per_entity=6,
            alias_fraction=0.0,
            typo_fraction=1.0,
            type_fraction=0.0,
            seed=0,
        )
        miner = TripletMiner(tiny_kg, cfg)
        germany_id = next(iter(tiny_kg.exact_lookup("germany")))
        triplets = miner.mine_entity(germany_id)
        assert len(triplets) == 6
        assert "deutschland" not in {t.positive for t in triplets}

    def test_type_positives_share_type(self, tiny_kg):
        cfg = TripletMiningConfig(
            triplets_per_entity=8,
            alias_fraction=0.0,
            typo_fraction=0.0,
            type_fraction=1.0,
            seed=0,
        )
        miner = TripletMiner(tiny_kg, cfg)
        germany_id = next(iter(tiny_kg.exact_lookup("germany")))
        country_labels = {
            tiny_kg.entity(eid).label for eid in tiny_kg.entities_of_type("country")
        }
        for triplet in miner.mine_entity(germany_id):
            assert triplet.positive in country_labels

    def test_deterministic(self, tiny_kg):
        cfg = TripletMiningConfig(triplets_per_entity=5, seed=42)
        assert TripletMiner(tiny_kg, cfg).mine() == TripletMiner(tiny_kg, cfg).mine()

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            TripletMiner(KnowledgeGraph())


class TestTripletType:
    def test_namedtuple_fields(self):
        t = Triplet("a", "p", "n")
        assert t.anchor == "a" and t.positive == "p" and t.negative == "n"
