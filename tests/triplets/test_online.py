"""Tests for online hard/semi-hard triplet selection."""

import numpy as np
import pytest

from repro.triplets.online import select_hard_triplets, split_by_hardness


def embeddings():
    """Three triplets engineered as easy / semi-hard / hard.

    d(a,p) and d(a,n) per row with margin 1.0:
      row 0: d_pos=0.01, d_neg=4.0  -> easy   (0.01 + 1 <= 4)
      row 1: d_pos=0.25, d_neg=1.0  -> semi   (0.25 < 1 < 1.25)
      row 2: d_pos=1.0,  d_neg=0.25 -> hard   (d_neg <= d_pos)
    """
    anchors = np.zeros((3, 2))
    positives = np.array([[0.1, 0.0], [0.5, 0.0], [1.0, 0.0]])
    negatives = np.array([[2.0, 0.0], [1.0, 0.0], [0.5, 0.0]])
    return anchors, positives, negatives


class TestSplitByHardness:
    def test_partitions_correctly(self):
        a, p, n = embeddings()
        parts = split_by_hardness(a, p, n, margin=1.0)
        assert parts["easy"].tolist() == [0]
        assert parts["semi_hard"].tolist() == [1]
        assert parts["hard"].tolist() == [2]

    def test_partition_is_exhaustive_and_disjoint(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 4))
        p = rng.normal(size=(50, 4))
        n = rng.normal(size=(50, 4))
        parts = split_by_hardness(a, p, n)
        combined = np.concatenate(list(parts.values()))
        assert sorted(combined.tolist()) == list(range(50))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            split_by_hardness(np.zeros((2, 3)), np.zeros((3, 3)), np.zeros((2, 3)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            split_by_hardness(np.zeros(3), np.zeros(3), np.zeros(3))


class TestSelectHardTriplets:
    def test_excludes_easy(self):
        a, p, n = embeddings()
        selected = select_hard_triplets(a, p, n, margin=1.0)
        assert selected.tolist() == [1, 2]

    def test_matches_nonzero_loss(self):
        """Selected indices are exactly those with positive triplet loss."""
        rng = np.random.default_rng(1)
        a = rng.normal(size=(80, 8))
        p = rng.normal(size=(80, 8))
        n = rng.normal(size=(80, 8))
        margin = 1.0
        d_pos = ((a - p) ** 2).sum(axis=1)
        d_neg = ((a - n) ** 2).sum(axis=1)
        losses = np.maximum(d_pos - d_neg + margin, 0.0)
        expected = np.flatnonzero(losses > 0)
        selected = select_hard_triplets(a, p, n, margin=margin)
        np.testing.assert_array_equal(selected, expected)
