"""Tests for the table renderers."""

import pytest

from repro.evaluation.reporting import format_table, render_markdown_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["longer", 22.5]])
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert "22.50" in text

    def test_title(self):
        text = format_table(["h"], [["x"]], title="Table II")
        assert text.startswith("Table II")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.12" in text

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])


class TestMarkdown:
    def test_structure(self):
        md = render_markdown_table(["a", "b"], [["x", 1.5]])
        lines = md.split("\n")
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| x | 1.50 |"

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [["x", "y"]])
