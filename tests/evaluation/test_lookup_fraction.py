"""Tests for the lookup-fraction instrumentation.

The paper motivates EmbLookup with the observation that lookup accounts
for "as much as 45% of the time taken" in the annotation systems.  These
tests pin the instrumentation that measures that share.
"""

import pytest

from repro.annotation.bbw import BbwAnnotator
from repro.evaluation.harness import AnnotationRun, run_cea_system
from repro.evaluation.metrics import PRF
from repro.lookup.elastic import ElasticLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup


class TestLookupFraction:
    def test_property_math(self):
        run = AnnotationRun("CEA", "s", "l", PRF(1, 1, 1), 2.0, 5, wall_seconds=4.0)
        assert run.lookup_fraction == 0.5

    def test_zero_wall_time(self):
        run = AnnotationRun("CEA", "s", "l", PRF(1, 1, 1), 2.0, 5)
        assert run.lookup_fraction == 0.0

    def test_wall_time_recorded(self, small_dataset, small_kg):
        run = run_cea_system(
            BbwAnnotator(ElasticLookup.build(small_kg)), small_dataset, small_kg
        )
        assert run.wall_seconds > 0
        assert run.lookup_seconds <= run.wall_seconds + 1e-6

    def test_scan_lookup_dominates_wall_time(self, small_dataset, small_kg):
        """With a slow scan matcher the lookup share is large — the paper's
        motivating bottleneck (its systems spent up to 45% in lookup)."""
        run = run_cea_system(
            BbwAnnotator(FuzzyWuzzyLookup.build(small_kg)),
            small_dataset,
            small_kg,
        )
        assert run.lookup_fraction > 0.45
