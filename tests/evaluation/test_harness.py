"""Tests for the experiment harness."""

import pytest

from repro.annotation.bbw import BbwAnnotator
from repro.annotation.doser import DoSeRDisambiguator
from repro.annotation.katara import KataraRepairer
from repro.evaluation.harness import (
    AnnotationRun,
    run_cea_system,
    run_cta_system,
    run_disambiguation,
    run_repair,
)
from repro.evaluation.metrics import PRF
from repro.lookup.elastic import ElasticLookup


@pytest.fixture(scope="module")
def elastic(small_kg):
    return ElasticLookup.build(small_kg)


class TestRuns:
    def test_cea_run_fields(self, elastic, small_dataset, small_kg):
        run = run_cea_system(BbwAnnotator(elastic), small_dataset, small_kg)
        assert run.task == "CEA"
        assert run.system == "bbw"
        assert run.lookup_name == "elastic"
        assert run.lookup_seconds > 0
        assert run.queries > 0
        assert 0.0 <= run.f_score <= 1.0

    def test_cta_run(self, elastic, small_dataset, small_kg):
        run = run_cta_system(BbwAnnotator(elastic), small_dataset, small_kg)
        assert run.task == "CTA"
        assert run.f_score > 0.5

    def test_disambiguation_run(self, elastic, small_dataset, small_kg):
        run = run_disambiguation(
            DoSeRDisambiguator(elastic), small_dataset, small_kg
        )
        assert run.task == "EA"
        assert run.f_score > 0.5

    def test_repair_run(self, elastic, small_dataset, small_kg):
        run = run_repair(KataraRepairer(elastic), small_dataset, small_kg)
        assert run.task == "DR"
        assert 0.0 <= run.f_score <= 1.0

    def test_timers_reset_between_runs(self, elastic, small_dataset, small_kg):
        first = run_cea_system(BbwAnnotator(elastic), small_dataset, small_kg)
        second = run_cea_system(BbwAnnotator(elastic), small_dataset, small_kg)
        # Each run re-measures from zero (not cumulative).
        assert second.lookup_seconds < first.lookup_seconds * 3


class TestSpeedup:
    def test_speedup_computation(self):
        fast = AnnotationRun("CEA", "s", "a", PRF(1, 1, 1), 0.5, 10)
        slow = AnnotationRun("CEA", "s", "b", PRF(1, 1, 1), 5.0, 10)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_zero_time_is_infinite(self):
        instant = AnnotationRun("CEA", "s", "a", PRF(1, 1, 1), 0.0, 10)
        slow = AnnotationRun("CEA", "s", "b", PRF(1, 1, 1), 5.0, 10)
        assert instant.speedup_over(slow) == float("inf")
