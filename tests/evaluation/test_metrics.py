"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    PRF,
    candidate_recall_at_k,
    cea_f_score,
    cta_f_score,
    disambiguation_f_score,
    index_recall_overlap,
    repair_f_score,
)
from repro.tables.table import CellRef


class TestPRF:
    def test_from_counts(self):
        prf = PRF.from_counts(correct=8, predicted=10, total=16)
        assert prf.precision == 0.8
        assert prf.recall == 0.5
        assert prf.f_score == pytest.approx(2 * 0.8 * 0.5 / 1.3)

    def test_zero_everything(self):
        prf = PRF.from_counts(0, 0, 0)
        assert prf.f_score == 0.0

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            PRF.from_counts(correct=5, predicted=3, total=10)


class TestCeaFScore:
    def test_perfect(self):
        truth = {CellRef("t", 0, 0): "Q1", CellRef("t", 1, 0): "Q2"}
        assert cea_f_score(dict(truth), truth).f_score == 1.0

    def test_abstention_hits_recall_not_precision(self):
        truth = {CellRef("t", r, 0): f"Q{r}" for r in range(4)}
        predictions = {CellRef("t", 0, 0): "Q0", CellRef("t", 1, 0): None}
        score = cea_f_score(predictions, truth)
        assert score.precision == 1.0
        assert score.recall == 0.25

    def test_wrong_prediction_hits_both(self):
        truth = {CellRef("t", 0, 0): "Q1"}
        score = cea_f_score({CellRef("t", 0, 0): "Q9"}, truth)
        assert score.f_score == 0.0


class TestCtaFScore:
    def test_exact_match(self):
        truth = {("t", 0): "country"}
        assert cta_f_score({("t", 0): "country"}, truth).f_score == 1.0

    def test_ancestor_partial_credit(self, small_kg):
        truth = {("t", 0): "capital"}
        strict = cta_f_score({("t", 0): "city"}, truth)
        lenient = cta_f_score({("t", 0): "city"}, truth, kg=small_kg)
        assert strict.f_score == 0.0
        assert 0.0 < lenient.f_score < 1.0

    def test_descendant_gets_no_credit(self, small_kg):
        truth = {("t", 0): "city"}
        score = cta_f_score({("t", 0): "capital"}, truth, kg=small_kg)
        assert score.f_score == 0.0


class TestDisambiguationFScore:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            disambiguation_f_score(["Q1"], ["Q1", "Q2"])

    def test_mixed(self):
        score = disambiguation_f_score(["Q1", None, "Q9"], ["Q1", "Q2", "Q3"])
        assert score.precision == 0.5
        assert score.recall == pytest.approx(1 / 3)


class TestRepairFScore:
    def test_same_semantics_as_cea(self):
        truth = {CellRef("t", 0, 0): "Q1"}
        assert repair_f_score({CellRef("t", 0, 0): "Q1"}, truth).f_score == 1.0


class TestCandidateRecall:
    def test_hit_within_k(self):
        lists = [["Q1", "Q2", "Q3"], ["Q4", "Q5", "Q6"]]
        assert candidate_recall_at_k(lists, ["Q2", "Q9"], k=3) == 0.5

    def test_k_cuts_list(self):
        lists = [["Q1", "Q2", "Q3"]]
        assert candidate_recall_at_k(lists, ["Q3"], k=2) == 0.0

    def test_empty(self):
        assert candidate_recall_at_k([], [], k=5) == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            candidate_recall_at_k([["Q1"]], [], k=1)


class TestIndexRecallOverlap:
    def test_identical_ids(self):
        ids = np.array([[0, 1, 2], [3, 4, 5]])
        assert index_recall_overlap(ids, ids, k=3) == 1.0

    def test_partial_overlap(self):
        approx = np.array([[0, 1, 9]])
        exact = np.array([[0, 1, 2]])
        assert index_recall_overlap(approx, exact, k=3) == pytest.approx(2 / 3)

    def test_padding_ignored(self):
        approx = np.array([[0, -1, -1]])
        exact = np.array([[0, -1, -1]])
        assert index_recall_overlap(approx, exact, k=3) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            index_recall_overlap(np.zeros((1, 2)), np.zeros((1, 2)), k=0)

    def test_query_count_mismatch(self):
        with pytest.raises(ValueError):
            index_recall_overlap(np.zeros((1, 2)), np.zeros((2, 2)), k=1)
