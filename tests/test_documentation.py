"""Documentation-completeness checks.

Walks the whole ``repro`` package and asserts every public module, class,
function, and method carries a docstring — keeping the "documented public
API" deliverable true by construction.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"module {module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home module
        if not inspect.getdoc(obj):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_") or not inspect.isfunction(attr):
                    continue
                if not inspect.getdoc(attr):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_all_exports_resolve():
    """Every name in each module's __all__ must actually exist."""
    for module in MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__: {name}"
