"""Tests for repro.text.alphabet."""

import pytest

from repro.text.alphabet import DEFAULT_ALPHABET, Alphabet


class TestConstruction:
    def test_dedupes_preserving_order(self):
        alphabet = Alphabet("abcabc")
        assert alphabet.chars == ("a", "b", "c")

    def test_size_includes_unknown_slot(self):
        assert Alphabet("abc").size == 4

    def test_rejects_multichar_entries(self):
        with pytest.raises(ValueError):
            Alphabet(["ab"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Alphabet("")

    def test_rejects_nul(self):
        with pytest.raises(ValueError):
            Alphabet("\0a")


class TestPositions:
    def test_positions_start_at_one(self):
        alphabet = Alphabet("xyz")
        assert alphabet.position("x") == 1
        assert alphabet.position("z") == 3

    def test_unknown_maps_to_zero(self):
        assert Alphabet("abc").position("Z") == 0

    def test_char_at_inverts_position(self):
        alphabet = Alphabet("abc")
        for ch in "abc":
            assert alphabet.char_at(alphabet.position(ch)) == ch

    def test_char_at_zero_is_unknown(self):
        assert Alphabet("abc").char_at(0) == Alphabet.UNKNOWN

    def test_contains(self):
        alphabet = Alphabet("abc")
        assert "a" in alphabet
        assert "z" not in alphabet


class TestFit:
    def test_collects_corpus_characters(self):
        alphabet = Alphabet.fit(["abc", "bcd"])
        assert set(alphabet.chars) == set("abcd")

    def test_min_count_drops_rare(self):
        alphabet = Alphabet.fit(["aab", "aac"], min_count=2)
        assert "b" not in alphabet
        assert "a" in alphabet

    def test_max_size_keeps_most_frequent(self):
        alphabet = Alphabet.fit(["aaab", "aaac"], max_size=1)
        assert alphabet.chars == ("a",)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            Alphabet.fit([])


class TestEquality:
    def test_equal_same_chars(self):
        assert Alphabet("abc") == Alphabet("abc")

    def test_unequal_different_chars(self):
        assert Alphabet("abc") != Alphabet("abd")


def test_default_alphabet_covers_common_labels():
    for ch in "berlin new-york o'brien & co. (usa)/eu,":
        assert DEFAULT_ALPHABET.position(ch) > 0, ch
