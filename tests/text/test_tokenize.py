"""Tests for repro.text.tokenize."""

from repro.text.tokenize import normalize, word_tokens, wordpieces


class TestNormalize:
    def test_lowercases(self):
        assert normalize("BERLIN") == "berlin"

    def test_strips_diacritics(self):
        assert normalize("Müller") == "muller"
        assert normalize("Café") == "cafe"

    def test_collapses_whitespace(self):
        assert normalize("  new   york  ") == "new york"

    def test_idempotent(self):
        for text in ["Weird   Cåse", "already normal", ""]:
            once = normalize(text)
            assert normalize(once) == once


class TestWordTokens:
    def test_splits_words(self):
        assert word_tokens("new york city") == ["new", "york", "city"]

    def test_handles_punctuation(self):
        assert word_tokens("o'brien & co.") == ["o'brien", "co"]

    def test_numbers_kept(self):
        assert word_tokens("route 66") == ["route", "66"]

    def test_empty(self):
        assert word_tokens("") == []


class TestWordpieces:
    def test_greedy_longest_match(self):
        vocab = {"ber", "##lin", "b", "e", "r", "##l", "##i", "##n"}
        assert wordpieces("berlin", vocab) == ["ber", "##lin"]

    def test_falls_back_to_chars(self):
        pieces = wordpieces("xyz", set())
        assert pieces == ["x", "##y", "##z"]

    def test_reconstruction(self):
        vocab = {"ger", "##many"}
        pieces = wordpieces("germany", vocab)
        rebuilt = pieces[0] + "".join(p.removeprefix("##") for p in pieces[1:])
        assert rebuilt == "germany"

    def test_max_piece_respected(self):
        vocab = {"abcdefghij"}
        pieces = wordpieces("abcdefghij", vocab, max_piece=4)
        assert all(len(p.removeprefix("##")) <= 4 for p in pieces)
