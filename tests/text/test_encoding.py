"""Tests for repro.text.encoding (one-hot mention encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder

ALPHABET = Alphabet("abcde ")
ENCODER = OneHotEncoder(ALPHABET, max_length=8)


class TestEncode:
    def test_paper_example(self):
        """The worked example of Section III-B: 'cad' over A={a..e}, L=4."""
        encoder = OneHotEncoder(Alphabet("abcde"), max_length=4)
        matrix = encoder.encode("cad")
        # Positions are 1-based (slot 0 = unknown).
        assert matrix[encoder.alphabet.position("c"), 0] == 1.0
        assert matrix[encoder.alphabet.position("a"), 1] == 1.0
        assert matrix[encoder.alphabet.position("d"), 2] == 1.0
        assert matrix[:, 3].sum() == 0.0

    def test_shape(self):
        assert ENCODER.encode("abc").shape == (ALPHABET.size, 8)

    def test_one_hot_columns(self):
        matrix = ENCODER.encode("abcde")
        assert (matrix.sum(axis=0)[:5] == 1.0).all()

    def test_padding_zero(self):
        matrix = ENCODER.encode("ab")
        assert matrix[:, 2:].sum() == 0.0

    def test_truncates_long_mentions(self):
        matrix = ENCODER.encode("a" * 100)
        assert matrix.shape == (ALPHABET.size, 8)
        assert matrix.sum() == 8.0

    def test_unknown_chars_hit_row_zero(self):
        matrix = ENCODER.encode("z")
        assert matrix[0, 0] == 1.0

    def test_empty_string_all_zero(self):
        assert ENCODER.encode("").sum() == 0.0

    def test_dtype_float32(self):
        assert ENCODER.encode("abc").dtype == np.float32


class TestEncodeBatch:
    def test_batch_matches_single(self):
        mentions = ["abc", "de", ""]
        batch = ENCODER.encode_batch(mentions)
        for i, mention in enumerate(mentions):
            np.testing.assert_array_equal(batch[i], ENCODER.encode(mention))

    def test_empty_batch(self):
        assert ENCODER.encode_batch([]).shape == (0, ALPHABET.size, 8)


class TestDecode:
    def test_roundtrip_known_chars(self):
        for mention in ["abc", "a b", "edcba"]:
            assert ENCODER.decode(ENCODER.encode(mention)) == mention

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ENCODER.decode(np.zeros((2, 2)))

    @given(st.text(alphabet="abcde ", max_size=8))
    @settings(max_examples=80)
    def test_roundtrip_property(self, mention):
        # Trailing spaces are preserved; only padding (zero columns) ends
        # decoding, so roundtrip is exact for in-alphabet strings.
        assert ENCODER.decode(ENCODER.encode(mention)) == mention


class TestValidation:
    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            OneHotEncoder(ALPHABET, max_length=0)
