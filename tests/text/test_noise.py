"""Tests for repro.text.noise (the misspelling taxonomy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.distance import damerau_levenshtein
from repro.text.noise import NoiseModel, NoiseSpec, abbreviate


class TestAbbreviate:
    def test_multiword_initialism(self):
        assert abbreviate("european union") == "eu"

    def test_three_words(self):
        assert abbreviate("federal republic germany") == "frg"

    def test_single_word_prefix(self):
        assert abbreviate("germany") == "ger"


class TestNoiseSpec:
    def test_default_operators_positive(self):
        ops = NoiseSpec().operators()
        assert len(ops) == 6
        assert all(w >= 0 for _, w in ops)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            NoiseSpec(drop_char=-0.1).operators()

    def test_all_zero_rejected(self):
        spec = NoiseSpec(0, 0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            spec.operators()


class TestNoiseModel:
    def test_deterministic_given_seed(self):
        a = NoiseModel(seed=3).corrupt_many("germany", 10)
        b = NoiseModel(seed=3).corrupt_many("germany", 10)
        assert a == b

    def test_empty_string_passthrough(self):
        assert NoiseModel(seed=0).corrupt("") == ""

    def test_corrupt_many_length(self):
        assert len(NoiseModel(seed=0).corrupt_many("berlin", 7)) == 7

    def test_invalid_max_edits(self):
        with pytest.raises(ValueError):
            NoiseModel(max_edits=0)

    def test_char_edits_bounded_by_max_edits(self):
        """Pure character operators stay within max_edits edit distance."""
        spec = NoiseSpec(
            drop_char=1, insert_char=1, transpose=1, substitute=1,
            swap_tokens=0, abbreviation=0,
        )
        model = NoiseModel(spec=spec, max_edits=2, seed=1)
        for _ in range(50):
            corrupted = model.corrupt("characters")
            assert damerau_levenshtein("characters", corrupted) <= 2

    def test_abbreviation_only(self):
        spec = NoiseSpec(0, 0, 0, 0, 0, abbreviation=1)
        model = NoiseModel(spec=spec, seed=0)
        assert model.corrupt("european union") == "eu"

    def test_swap_tokens_preserves_token_set(self):
        spec = NoiseSpec(0, 0, 0, 0, swap_tokens=1, abbreviation=0)
        model = NoiseModel(spec=spec, seed=0)
        corrupted = model.corrupt("alpha beta gamma")
        assert sorted(corrupted.split()) == ["alpha", "beta", "gamma"]
        assert corrupted != "alpha beta gamma" or True  # may swap any adjacent pair

    @given(st.text(alphabet="abcdefgh ", min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_corrupt_always_returns_string(self, text):
        model = NoiseModel(seed=5)
        corrupted = model.corrupt(text)
        assert isinstance(corrupted, str)

    def test_operator_mixture_reached(self):
        """Over many samples every operator family should fire."""
        model = NoiseModel(seed=11)
        variants = model.corrupt_many("european union", 300)
        assert "eu" in variants            # abbreviation fires eventually
        assert any(v != "european union" for v in variants)
