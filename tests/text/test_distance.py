"""Tests for repro.text.distance — including metric property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.distance import (
    damerau_levenshtein,
    jaccard_qgram_similarity,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    qgrams,
)

short_text = st.text(alphabet="abcdef ", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("abc", "abcd", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "abc", 3),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetric_arguments(self):
        assert levenshtein("short", "muchlongerstring") == levenshtein(
            "muchlongerstring", "short"
        )

    def test_cutoff_allows_overestimate_beyond_bound(self):
        d = levenshtein("aaaaaaaa", "bbbbbbbb", max_distance=2)
        assert d > 2

    def test_cutoff_exact_below_bound(self):
        assert levenshtein("abc", "abd", max_distance=2) == 1

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_identity(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(short_text, short_text, short_text)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_max_length_upper_bound(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))


class TestDamerauLevenshtein:
    def test_transposition_is_single_edit(self):
        assert damerau_levenshtein("abcd", "abdc") == 1
        assert levenshtein("abcd", "abdc") == 2

    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("ca", "ac", 1), ("a", "", 1), ("abc", "ca", 3)],
    )
    def test_known_values(self, a, b, expected):
        assert damerau_levenshtein(a, b) == expected

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)


class TestLevenshteinRatio:
    def test_identical_is_one(self):
        assert levenshtein_ratio("germany", "germany") == 1.0

    def test_empty_pair_is_one(self):
        assert levenshtein_ratio("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert levenshtein_ratio("abc", "xyz") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_bounded(self, a, b):
        assert 0.0 <= levenshtein_ratio(a, b) <= 1.0


class TestQGrams:
    def test_padded_gram_count(self):
        grams = qgrams("ab", q=3)
        # "##ab##" -> 4 trigrams
        assert grams == ["##a", "#ab", "ab#", "b##"]

    def test_unpadded(self):
        assert qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_short_unpadded_returns_whole(self):
        assert qgrams("ab", q=3, pad=False) == ["ab"]

    def test_empty_string(self):
        assert qgrams("", q=3, pad=False) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)


class TestJaccardQGram:
    def test_identical(self):
        assert jaccard_qgram_similarity("berlin", "berlin") == 1.0

    def test_bounded_and_symmetric(self):
        s1 = jaccard_qgram_similarity("berlin", "bellin")
        s2 = jaccard_qgram_similarity("bellin", "berlin")
        assert s1 == s2
        assert 0.0 < s1 < 1.0

    def test_both_empty(self):
        assert jaccard_qgram_similarity("", "") == 1.0


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic example: jaro(martha, marhta) = 0.944..., JW = 0.961...
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_no_overlap_zero(self):
        assert jaro_winkler("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_winkler("", "abc") == 0.0

    def test_prefix_boost(self):
        with_prefix = jaro_winkler("prefixed", "prefixxx")
        base = jaro_winkler("xprefixed", "yprefixxx")
        assert with_prefix > base

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_bounded(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0
