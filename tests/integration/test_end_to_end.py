"""End-to-end integration tests reproducing the paper's claims in miniature.

These tie the whole stack together: KG generation -> EmbLookup training ->
annotation systems -> metrics, checking the *direction* of each headline
result (speedup over slow services, robustness to noise, semantic lookup).
"""

import pytest

from repro.annotation.bbw import BbwAnnotator
from repro.evaluation.harness import run_cea_system
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.text.noise import NoiseModel


@pytest.fixture(scope="module")
def el_service(trained_service):
    return EmbLookupService(trained_service)


@pytest.fixture(scope="module")
def tiny_dataset(tiny_kg):
    from repro.tables import BenchmarkConfig, generate_benchmark

    return generate_benchmark(
        tiny_kg, BenchmarkConfig(num_tables=6, min_rows=4, max_rows=8, seed=13)
    )


class TestSpeedupClaim:
    def test_faster_than_fuzzy_scan(self, el_service, tiny_kg, tiny_dataset):
        """EmbLookup must beat the Levenshtein-ratio full scan by a wide
        margin on the same workload (the paper's core speed claim)."""
        fuzzy = FuzzyWuzzyLookup.build(tiny_kg)
        original = run_cea_system(BbwAnnotator(fuzzy), tiny_dataset, tiny_kg)
        replaced = run_cea_system(BbwAnnotator(el_service), tiny_dataset, tiny_kg)
        assert replaced.speedup_over(original) > 3

    def test_accuracy_close_to_original(self, el_service, tiny_kg, tiny_dataset):
        fuzzy = FuzzyWuzzyLookup.build(tiny_kg)
        original = run_cea_system(BbwAnnotator(fuzzy), tiny_dataset, tiny_kg)
        replaced = run_cea_system(BbwAnnotator(el_service), tiny_dataset, tiny_kg)
        assert replaced.f_score > original.f_score - 0.15


class TestRobustnessClaim:
    def test_beats_exact_match_under_noise(self, el_service, tiny_kg, tiny_dataset):
        noisy = tiny_dataset.with_noise(0.5, seed=7)
        exact = ExactMatchLookup.build(tiny_kg)
        brittle = run_cea_system(BbwAnnotator(exact), noisy, tiny_kg)
        robust = run_cea_system(BbwAnnotator(el_service), noisy, tiny_kg)
        assert robust.f_score > brittle.f_score

    def test_retrieval_survives_typos(self, el_service, tiny_kg):
        noise = NoiseModel(seed=1)
        entities = list(tiny_kg.entities())[:60]
        queries = [noise.corrupt(e.label) for e in entities]
        results = el_service.lookup_batch(queries, 10)
        hits = sum(
            1
            for entity, row in zip(entities, results)
            if entity.entity_id in [c.entity_id for c in row]
        )
        assert hits / len(entities) > 0.5


class TestSemanticClaim:
    def test_alias_queries_resolve(self, el_service, tiny_kg):
        """Lookup by alias without the alias being in the index."""
        cases = 0
        hits = 0
        for entity in tiny_kg.entities():
            for alias in entity.aliases[:1]:
                cases += 1
                row = el_service.lookup(alias, 10)
                if entity.entity_id in [c.entity_id for c in row]:
                    hits += 1
        assert cases > 50
        assert hits / cases > 0.4


class TestCompressionClaim:
    def test_pq_index_32x_smaller_than_flat(self, tiny_kg, trained_service):
        """256 B/entity (float32, 64-d) -> 8 B/entity (PQ codes)."""
        from repro.index.flat import FlatIndex

        pq_index = trained_service.index
        code_bytes = pq_index.codes.nbytes / pq_index.ntotal
        assert code_bytes == trained_service.config.pq_m == 8
        flat_equiv = pq_index.ntotal * trained_service.config.embedding_dim * 4
        assert flat_equiv / pq_index.codes.nbytes == 32.0
