"""Reproducibility: identical seeds must reproduce identical systems.

Every experiment in the benchmark suite leans on this — the paper-vs-
measured record is only meaningful if a rerun regenerates the same
numbers.
"""

import numpy as np

from repro.core.config import EmbLookupConfig
from repro.core.pipeline import EmbLookup
from repro.kg import SyntheticKGConfig, generate_kg
from repro.tables import BenchmarkConfig, generate_benchmark


def _fast_config() -> EmbLookupConfig:
    return EmbLookupConfig(
        epochs=1, triplets_per_entity=3, fasttext_epochs=1, seed=77
    )


class TestPipelineDeterminism:
    def test_same_seed_same_model(self, tiny_kg):
        a = EmbLookup(_fast_config())
        a.fit(tiny_kg)
        b = EmbLookup(_fast_config())
        b.fit(tiny_kg)
        for (name_a, p_a), (name_b, p_b) in zip(
            a.model.named_parameters(), b.model.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_same_seed_same_lookups(self, tiny_kg):
        queries = ["germany", "germny", "deutschland", "bill gates"]
        a = EmbLookup(_fast_config())
        a.fit(tiny_kg)
        b = EmbLookup(_fast_config())
        b.fit(tiny_kg)
        res_a = a.lookup_batch(queries, 5)
        res_b = b.lookup_batch(queries, 5)
        assert [[r.entity_id for r in row] for row in res_a] == [
            [r.entity_id for r in row] for row in res_b
        ]

    def test_different_seed_different_model(self, tiny_kg):
        a = EmbLookup(_fast_config())
        a.fit(tiny_kg)
        from dataclasses import replace

        b = EmbLookup(replace(_fast_config(), seed=78))
        b.fit(tiny_kg)
        weights_a = next(iter(a.model.parameters())).data
        weights_b = next(iter(b.model.parameters())).data
        assert not np.array_equal(weights_a, weights_b)


class TestEndToEndDeterminism:
    def test_benchmark_pipeline_reproducible(self):
        """KG -> dataset -> noise, twice from the same seeds."""
        def build():
            kg = generate_kg(SyntheticKGConfig(num_entities=250, seed=9))
            ds = generate_benchmark(kg, BenchmarkConfig(num_tables=6, seed=4))
            noisy = ds.with_noise(0.2, seed=8)
            return [
                (ref, noisy.cell_text(ref)) for ref in noisy.annotated_cells()
            ]
        assert build() == build()
