"""Tests for repro.serving.engine (micro-batching lookup engine)."""

import numpy as np
import pytest

from repro.index.partitioned import TypePartitionedIndex
from repro.index.sharded import ShardedIndex
from repro.lookup.cache import QueryCache
from repro.lookup.router import LookupRouter, TypeFilterMap
from repro.serving.engine import LookupEngine


@pytest.fixture(scope="module")
def engine(trained_service):
    """A single-shard engine over the session's trained pipeline."""
    return LookupEngine.from_pipeline(trained_service, max_batch_size=4)


class TestConstruction:
    def test_requires_fitted_pipeline(self, trained_service):
        from repro.core.pipeline import EmbLookup

        with pytest.raises(ValueError):
            LookupEngine.from_pipeline(EmbLookup(trained_service.config))

    def test_row_count_validated(self, trained_service):
        from repro.index.flat import FlatIndex

        with pytest.raises(ValueError):
            LookupEngine(trained_service, FlatIndex(64), ["only-one-row"])

    def test_from_pipeline_sharded(self, trained_service):
        engine = LookupEngine.from_pipeline(trained_service, num_shards=4)
        assert isinstance(engine.index, ShardedIndex)
        assert engine.index.ntotal == len(trained_service.row_entity_ids)
        engine.close()

    def test_cache_size_from_config_default(self, engine, trained_service):
        assert trained_service.config.query_cache_size == 0
        assert engine.cache is None

    def test_index_bytes_positive(self, engine):
        assert engine.index_bytes() > 0


class TestSynchronousLookup:
    def test_matches_pipeline_ranking(self, engine, trained_service):
        """The engine's flat scan ranks exactly like the pipeline's EL-NC
        (uncompressed) path: same entities, distances negated to scores."""
        queries = ["germany", "france", "uni of oxford"]
        got = engine.lookup_batch(queries, 5)
        flat = trained_service.clone_with_compression("none")
        want = flat.lookup_batch(queries, 5)
        for got_row, want_row in zip(got, want):
            assert [c.entity_id for c in got_row] == [
                r.entity_id for r in want_row
            ]
            np.testing.assert_allclose(
                [-c.score for c in got_row],
                [r.distance for r in want_row],
                rtol=1e-5,
                atol=1e-6,
            )

    def test_sharded_engine_matches_single_shard(self, trained_service):
        queries = ["germany", "tokyo", "acme corp"]
        single = LookupEngine.from_pipeline(trained_service, num_shards=1)
        sharded = LookupEngine.from_pipeline(trained_service, num_shards=3)
        assert single.lookup_batch(queries, 5) == sharded.lookup_batch(
            queries, 5
        )
        sharded.close()

    @pytest.mark.parametrize("executor", ["inline", "thread", "process"])
    def test_executor_choice_does_not_change_results(
        self, executor, trained_service
    ):
        """The serving answer is executor-invariant: worker processes
        over shared memory return what the in-process scan returns."""
        queries = ["germany", "tokyo", "acme corp", "uni of oxford"]
        baseline = LookupEngine.from_pipeline(trained_service, num_shards=3)
        want = baseline.lookup_batch(queries, 5)
        baseline.close()
        with LookupEngine.from_pipeline(
            trained_service, num_shards=3, executor=executor, num_workers=2
        ) as engine:
            assert engine.index.resolved_executor() == executor
            assert engine.lookup_batch(queries, 5) == want
            stats = engine.serving_stats()
            assert stats["worker_respawns"] == 0

    def test_process_engine_teardown_unlinks_shm(self, trained_service):
        import os

        from repro.index import shm

        mine = f"{shm.SEGMENT_PREFIX}-{os.getpid()}-"
        engine = LookupEngine.from_pipeline(
            trained_service, num_shards=2, executor="process"
        )
        engine.lookup_batch(["germany"], 3)
        assert any(n.startswith(mine) for n in shm.owned_segment_names())
        engine.close()
        engine.close()
        assert not any(n.startswith(mine) for n in shm.owned_segment_names())

    def test_stage_timers_accumulate(self, trained_service):
        engine = LookupEngine.from_pipeline(trained_service)
        engine.lookup_batch(["germany"], 3)
        stages = engine.stage_seconds()
        assert set(stages) == {"cache", "route", "embed", "search", "rank"}
        assert stages["embed"] > 0
        assert stages["search"] > 0
        assert engine.query_time.total >= stages["search"]
        engine.reset_timers()
        assert all(v == 0.0 for v in engine.stage_seconds().values())
        assert engine.query_time.total == 0.0


class TestMicroBatching:
    def test_submit_queues_until_flush(self, trained_service):
        engine = LookupEngine.from_pipeline(
            trained_service, max_batch_size=100, max_batch_age=1000.0
        )
        h1 = engine.submit("germany", 3)
        h2 = engine.submit("france", 3)
        assert not h1.done and not h2.done
        assert engine.pending == 2
        assert engine.flush() == 2
        assert h1.done and h2.done
        assert engine.pending == 0

    def test_size_threshold_auto_flushes(self, trained_service):
        engine = LookupEngine.from_pipeline(
            trained_service, max_batch_size=2, max_batch_age=1000.0
        )
        h1 = engine.submit("germany", 3)
        assert not h1.done
        h2 = engine.submit("france", 3)
        assert h1.done and h2.done

    def test_result_forces_flush(self, trained_service):
        engine = LookupEngine.from_pipeline(
            trained_service, max_batch_size=100, max_batch_age=1000.0
        )
        handle = engine.submit("germany", 3)
        row = handle.result  # implicit flush
        assert handle.done
        assert row == engine.lookup_batch(["germany"], 3)[0]

    def test_mixed_k_batches_resolve_correctly(self, trained_service):
        engine = LookupEngine.from_pipeline(
            trained_service, max_batch_size=100, max_batch_age=1000.0
        )
        h3 = engine.submit("germany", 3)
        h5 = engine.submit("germany", 5)
        engine.flush()
        assert len(h3.result) == 3
        assert len(h5.result) == 5

    def test_submit_validates_k(self, engine):
        with pytest.raises(ValueError):
            engine.submit("x", 0)

    def test_flush_empty_queue(self, engine):
        assert engine.flush() == 0


class TestEngineCache:
    def test_result_cache_short_circuits_search(self, trained_service):
        cache = QueryCache(16, cache_results=True)
        engine = LookupEngine.from_pipeline(trained_service)
        engine.cache = cache
        first = engine.lookup_batch(["germany", "france"], 4)
        searches_before = engine.stage_seconds()["embed"]
        embed_calls_before = cache.stats.misses
        second = engine.lookup_batch(["germany", "france"], 4)
        assert second == first
        # Result hits mean no new embedding-store misses.
        assert cache.stats.misses == embed_calls_before
        assert engine.stage_seconds()["embed"] == searches_before

    def test_normalization_shares_entries(self, trained_service):
        cache = QueryCache(16, cache_results=True)
        engine = LookupEngine.from_pipeline(trained_service)
        engine.cache = cache
        engine.lookup_batch(["Germany"], 4)
        hits_before = cache.stats.hits
        engine.lookup_batch(["  germany  "], 4)
        assert cache.stats.hits > hits_before


def assert_candidate_rows_agree(got, want):
    """Same ranked entities; scores equal up to flat-scan BLAS ulp noise."""
    assert len(got) == len(want)
    for got_row, want_row in zip(got, want):
        assert [c.entity_id for c in got_row] == [c.entity_id for c in want_row]
        np.testing.assert_allclose(
            [c.score for c in got_row],
            [c.score for c in want_row],
            rtol=1e-6,
            atol=1e-9,
        )


class TestRouterIntegration:
    """Router-in-engine tiers plus type_filter over partitioned indexes."""

    @pytest.fixture(scope="class")
    def routed(self, trained_service):
        engine = LookupEngine.from_pipeline(
            trained_service, partition_by_type=True, router=True
        )
        yield engine
        engine.close()

    def test_builds_partitioned_index_and_router(self, routed, trained_service):
        assert isinstance(routed.index, TypePartitionedIndex)
        assert routed.index.ntotal == len(trained_service.row_entity_ids)
        assert isinstance(routed.router, LookupRouter)
        assert routed.router.ann is None  # the engine IS the ann tier
        assert routed.supports_type_filter

    def test_exact_hit_skips_the_embedding_stage(self, routed, trained_service):
        label = next(trained_service.kg.entities()).label
        routed.reset_timers()
        before = routed.serving_stats()["exact_hits"]
        row = routed.lookup_batch([label], 5)[0]
        assert row and row[0].score == 1.0
        assert routed.serving_stats()["exact_hits"] == before + 1
        assert routed.stage_seconds()["embed"] == 0.0
        assert routed.stage_seconds()["route"] > 0.0

    def test_ann_queries_still_match_unrouted_engine(self, routed, trained_service):
        """Queries no cheap tier claims answer exactly like the plain
        flat engine (the router==pure-ANN acceptance property)."""
        queries = ["germaby republik", "unversity of oxfort"]
        plain = LookupEngine.from_pipeline(trained_service)
        assert_candidate_rows_agree(
            routed.lookup_batch(queries, 5), plain.lookup_batch(queries, 5)
        )

    def test_typed_lookup_scans_only_matching_partitions(
        self, routed, trained_service
    ):
        kg = trained_service.kg
        # The narrowest populated type: its partitions must cover a
        # strict subset of the index.
        per_query, tid = min(
            (
                routed.index.rows_in(
                    routed._type_map.partitions_for(t.type_id)
                ),
                t.type_id,
            )
            for t in kg.types()
            if routed._type_map.allowed(t.type_id)
        )
        assert 0 < per_query < routed.index.ntotal
        before = routed.serving_stats()["type_filtered_rows_scanned"]
        rows = routed.lookup_batch(["zzz unknown query xyz"], 5, type_filter=tid)
        scanned = routed.serving_stats()["type_filtered_rows_scanned"] - before
        assert scanned == per_query
        allowed = routed._type_map.allowed(tid)
        assert rows[0] and all(c.entity_id in allowed for c in rows[0])

    def test_partitioned_typed_results_match_full_scan_post_filtering(
        self, routed, trained_service
    ):
        """The tentpole exactness claim end-to-end: partition-restricted
        typed lookups are identical to type-filtering a full-index scan
        (the fallback path a flat engine takes)."""
        kg = trained_service.kg
        fallback = LookupEngine.from_pipeline(trained_service, router=True)
        assert not isinstance(fallback.index, TypePartitionedIndex)
        queries = ["germaby", "zzz unknown", "uni of oxfort", "tokio"]
        for entity_type in kg.types():
            tid = entity_type.type_id
            assert_candidate_rows_agree(
                routed.lookup_batch(queries, 5, type_filter=tid),
                fallback.lookup_batch(queries, 5, type_filter=tid),
            )

    def test_typed_results_cached_per_scope(self, routed, trained_service):
        tid = next(trained_service.kg.types()).type_id
        cache = QueryCache(16, cache_results=True)
        routed.cache = cache
        try:
            query = "scope isolation probe"
            row = routed.lookup_batch([query], 4, type_filter=tid)[0]
            assert cache.get_result(query, 4) is None
            assert cache.get_result(query, 4, scope=tid) == row
        finally:
            routed.cache = None

    def test_type_filter_without_map_raises(self, trained_service):
        plain = LookupEngine.from_pipeline(trained_service)
        with pytest.raises(RuntimeError, match="TypeFilterMap"):
            plain.lookup_batch(["x"], 3, type_filter="anything")

    def test_unknown_type_filter_raises_key_error(self, routed):
        with pytest.raises(KeyError, match="unknown type"):
            routed.lookup_batch(["x"], 3, type_filter="no-such-type")

    def test_serving_stats_has_router_and_scan_counters(self, routed):
        stats = routed.serving_stats()
        for key in (
            "exact_hits",
            "fuzzy_routed",
            "ann_routed",
            "type_filtered_rows_scanned",
        ):
            assert key in stats

    def test_stats_counters_are_zero_without_router(self, engine):
        stats = engine.serving_stats()
        assert stats["exact_hits"] == 0
        assert stats["fuzzy_routed"] == 0
        assert stats["ann_routed"] == 0
        assert stats["type_filtered_rows_scanned"] == 0
