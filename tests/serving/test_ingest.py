"""Tests for repro.serving.ingest and the engine's online-mutation path.

Covers the satellite regression (a cached result must never resurrect a
removed entity), the change-feed consumer's watermark/retry/dead-letter
semantics, background ingestion interleaved with ``submit()`` traffic,
and the compaction trigger under sustained churn.
"""

import threading

import numpy as np
import pytest

from repro.lookup.cache import QueryCache
from repro.serving.engine import LookupEngine
from repro.serving.ingest import (
    ChangeFeedConsumer,
    IndexMutation,
    WatermarkTracker,
)


@pytest.fixture(scope="module")
def mutable_engine(trained_service):
    """A routed, cached engine shared by the read-mostly tests below.

    Tests that mutate it only touch entities they create themselves,
    so the shared pipeline entities stay stable across tests.
    """
    engine = LookupEngine.from_pipeline(
        trained_service,
        router=True,
        cache_size=64,
        max_batch_size=4,
    )
    yield engine
    engine.close()


def fresh_engine(trained_service, **kwargs):
    kwargs.setdefault("router", True)
    kwargs.setdefault("cache_size", 64)
    return LookupEngine.from_pipeline(trained_service, **kwargs)


class TestIndexMutation:
    def test_validation(self):
        with pytest.raises(ValueError, match="mention"):
            IndexMutation(0, "add", "e1")
        with pytest.raises(ValueError, match="mention"):
            IndexMutation(0, "update", "e1")
        with pytest.raises(ValueError, match="seq"):
            IndexMutation(-1, "remove", "e1")
        with pytest.raises(ValueError, match="kind"):
            IndexMutation(0, "frobnicate", "e1")
        with pytest.raises(ValueError, match="entity_id"):
            IndexMutation(0, "remove", "")
        record = IndexMutation(3, "add", "e1", mentions=["a", "b"])
        assert record.mentions == ("a", "b")  # coerced to tuple

    def test_remove_needs_no_mentions(self):
        record = IndexMutation(0, "remove", "e1")
        assert record.mentions == ()


class TestWatermarkTracker:
    def test_advances_over_contiguous_runs(self):
        tracker = WatermarkTracker()
        assert tracker.watermark == -1
        tracker.mark_applied(0)
        assert tracker.watermark == 0
        tracker.mark_applied(3)
        tracker.mark_applied(2)
        assert tracker.watermark == 0
        assert tracker.pending_gaps() == (2, 3)
        tracker.mark_applied(1)
        assert tracker.watermark == 3
        assert tracker.pending_gaps() == ()

    def test_start_seq_offsets_the_frontier(self):
        tracker = WatermarkTracker(start_seq=10)
        assert tracker.watermark == 9
        tracker.mark_applied(10)
        assert tracker.watermark == 10


class TestStaleCacheRegression:
    def test_lookup_after_remove_never_serves_tombstoned_entity(
        self, trained_service, tiny_kg
    ):
        """The satellite regression: with result caching on, a lookup
        after ``remove()`` must not return the tombstoned entity from
        the ``(query, k)`` cache — the generation bump makes the cached
        entry unreachable."""
        engine = fresh_engine(trained_service)
        victim = next(iter(tiny_kg.entities()))
        query = victim.label
        try:
            before = engine.lookup_batch([query], 5)[0]
            assert any(c.entity_id == victim.entity_id for c in before)
            # Same lookup again: now served from the result cache.
            hits_before = engine.cache.stats.hits
            again = engine.lookup_batch([query], 5)[0]
            assert engine.cache.stats.hits > hits_before
            assert [c.entity_id for c in again] == [
                c.entity_id for c in before
            ]
            engine.apply_mutation(
                IndexMutation(0, "remove", victim.entity_id)
            )
            after = engine.lookup_batch([query], 5)[0]
            assert not any(
                c.entity_id == victim.entity_id for c in after
            ), "cache served a tombstoned entity"
            # The exact-hit tier must have dropped it too.
            assert victim.entity_id not in engine.router.label_table.lookup(
                query
            )
        finally:
            engine.close()

    def test_generation_bump_preserves_embeddings(self, trained_service):
        engine = fresh_engine(trained_service, router=False)
        try:
            engine.lookup_batch(["zzz unknown query"], 3)
            generation = engine.cache.generation
            engine.apply_mutation(
                IndexMutation(
                    0, "add", "e-gen", mentions=("generation probe",)
                )
            )
            assert engine.cache.generation == generation + 1
            # The embedding store survives: same query re-served without
            # a second model forward pass for it.
            assert engine.cache.get_embedding("zzz unknown query") is not None
        finally:
            engine.close()


class TestConsumerApply:
    def test_feed_applies_and_advances_watermark(
        self, mutable_engine
    ):
        consumer = ChangeFeedConsumer(mutable_engine)
        feed = [
            IndexMutation(0, "add", "feed-a", mentions=("feed alpha",)),
            IndexMutation(
                1, "add", "feed-b", mentions=("feed beta", "feed b")
            ),
            IndexMutation(
                2, "update", "feed-a", mentions=("feed alpha prime",)
            ),
            IndexMutation(3, "remove", "feed-b"),
        ]
        assert consumer.consume(feed) == 4
        assert consumer.watermark == 3
        assert consumer.dead_letters == ()
        row = mutable_engine.lookup_batch(["feed alpha prime"], 3)[0]
        assert row and row[0].entity_id == "feed-a"
        row = mutable_engine.lookup_batch(["feed beta"], 3)[0]
        assert not any(c.entity_id == "feed-b" for c in row)
        stats = mutable_engine.serving_stats()
        assert stats["mutations_applied"] >= 4

    def test_poison_record_dead_letters_without_watermark_advance(
        self, mutable_engine
    ):
        """A semantically invalid record (remove of an unknown entity)
        goes straight to the dead-letter lane — no retries, and the
        watermark stays pinned below it while later records still
        apply (the gap stays visible)."""
        sleeps = []
        consumer = ChangeFeedConsumer(
            mutable_engine, max_retries=3, sleep=sleeps.append
        )
        applied = consumer.consume(
            [
                IndexMutation(0, "remove", "never-indexed"),
                IndexMutation(1, "add", "feed-c", mentions=("feed gamma",)),
            ]
        )
        assert applied == 1
        assert sleeps == []  # ValueError is not retried
        assert consumer.watermark == -1  # pinned below the dead letter
        letters = consumer.dead_letters
        assert len(letters) == 1
        assert letters[0].mutation.seq == 0
        assert letters[0].attempts == 1
        assert "never-indexed" in letters[0].error
        stats = consumer.ingest_stats()
        assert stats["dead_letters"] == 1 and stats["applied"] == 1
        mutable_engine.apply_mutation(IndexMutation(9, "remove", "feed-c"))

    def test_transient_errors_retry_with_backoff_then_dead_letter(self):
        class FlakyEngine:
            def __init__(self, failures):
                self.failures = failures
                self.calls = 0

            def apply_mutation(self, mutation):
                self.calls += 1
                if self.calls <= self.failures:
                    raise RuntimeError("worker pool mid-respawn")

        sleeps = []
        engine = FlakyEngine(failures=2)
        consumer = ChangeFeedConsumer(
            engine,
            max_retries=3,
            backoff=0.5,
            backoff_factor=2.0,
            sleep=sleeps.append,
        )
        assert consumer.apply(IndexMutation(0, "remove", "x")) is True
        assert sleeps == [0.5, 1.0]  # exponential schedule, injectable
        assert consumer.watermark == 0

        sleeps.clear()
        hopeless = FlakyEngine(failures=99)
        consumer = ChangeFeedConsumer(
            hopeless,
            max_retries=2,
            backoff=0.25,
            backoff_factor=2.0,
            sleep=sleeps.append,
        )
        assert consumer.apply(IndexMutation(5, "remove", "y")) is False
        assert sleeps == [0.25, 0.5]  # bounded: max_retries delays
        assert hopeless.calls == 3  # first attempt + 2 retries
        assert consumer.watermark == -1
        assert consumer.dead_letters[0].attempts == 3

    def test_constructor_validation(self, mutable_engine):
        with pytest.raises(ValueError):
            ChangeFeedConsumer(mutable_engine, max_retries=-1)
        with pytest.raises(ValueError):
            ChangeFeedConsumer(mutable_engine, backoff_factor=0.5)
        with pytest.raises(ValueError):
            ChangeFeedConsumer(mutable_engine, compact_threshold=0.0)


class TestBackgroundIngestion:
    def test_mutations_interleave_with_submit_traffic(
        self, trained_service, tiny_kg
    ):
        """Feed records applied on the consumer thread while serving
        threads hammer ``submit()``: every handle resolves, and after the
        drain the engine serves exactly the post-feed entity set."""
        engine = fresh_engine(trained_service, max_batch_size=4)
        labels = [e.label for e in tiny_kg.entities()][:12]
        handles = []
        handle_lock = threading.Lock()
        try:
            with ChangeFeedConsumer(engine) as consumer:
                barrier = threading.Barrier(3)

                def serve():
                    barrier.wait()
                    mine = []
                    for i in range(30):
                        mine.append(
                            engine.submit(labels[i % len(labels)], k=3)
                        )
                    engine.flush()
                    with handle_lock:
                        handles.extend(mine)

                def publish():
                    barrier.wait()
                    for seq in range(10):
                        consumer.publish(
                            IndexMutation(
                                seq,
                                "add",
                                f"stream-{seq}",
                                mentions=(f"streamed entity {seq}",),
                            )
                        )

                threads = [
                    threading.Thread(target=serve),
                    threading.Thread(target=serve),
                    threading.Thread(target=publish),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                consumer.drain()
                assert consumer.watermark == 9
                assert consumer.dead_letters == ()
            for handle in handles:
                assert handle.done and handle.exception is None
                assert len(handle.result) > 0
            row = engine.lookup_batch(["streamed entity 7"], 3)[0]
            assert row and row[0].entity_id == "stream-7"
            assert engine.serving_stats()["mutations_applied"] == 10
        finally:
            engine.close()

    def test_compact_threshold_triggers_engine_compaction(
        self, trained_service
    ):
        engine = fresh_engine(trained_service, router=False)
        try:
            consumer = ChangeFeedConsumer(engine, compact_threshold=0.02)
            seq = 0
            for i in range(4):
                assert consumer.apply(
                    IndexMutation(
                        seq, "add", f"churn-{i}", mentions=(f"churn {i}",)
                    )
                )
                seq += 1
            ntotal_before = engine.index.ntotal
            for i in range(4):
                assert consumer.apply(
                    IndexMutation(seq, "remove", f"churn-{i}")
                )
                seq += 1
            # The threshold fired along the way: tombstones were reclaimed
            # and the store shrank back below the pre-churn size.
            assert engine.serving_stats()["compactions"] >= 1
            assert engine.index.ntotal < ntotal_before
            assert engine.index.tombstone_count / engine.index.ntotal < 0.02
        finally:
            engine.close()


class TestEngineCompaction:
    def test_compact_rekeys_rows_and_keeps_serving(
        self, trained_service, tiny_kg
    ):
        engine = fresh_engine(trained_service)
        entities = list(tiny_kg.entities())
        victims = [e.entity_id for e in entities[1:4]]
        probe = entities[5].label
        probe_id = entities[5].entity_id
        try:
            for seq, victim in enumerate(victims):
                engine.apply_mutation(IndexMutation(seq, "remove", victim))
            before = engine.lookup_batch([probe], 5)[0]
            assert any(c.entity_id == probe_id for c in before)
            assert engine.compact() is True
            after = engine.lookup_batch([probe], 5)[0]
            assert [c.entity_id for c in after] == [
                c.entity_id for c in before
            ]
            assert engine.compact() is False  # nothing left to reclaim
            stats = engine.serving_stats()
            assert stats["compactions"] == 1
        finally:
            engine.close()

    def test_lookups_racing_compaction_resolve_consistently(
        self, trained_service, tiny_kg
    ):
        """Searchers race a compaction swap: the seqlock retry pins the
        row map with the row ids, so every result resolves to real
        entities — never through a stale map."""
        engine = fresh_engine(trained_service, cache_size=0)
        entities = list(tiny_kg.entities())
        known = {e.entity_id for e in entities}
        labels = [e.label for e in entities[10:20]]
        for seq, entity in enumerate(entities[:8]):
            engine.apply_mutation(
                IndexMutation(seq, "remove", entity.entity_id)
            )
        removed = {e.entity_id for e in entities[:8]}
        barrier = threading.Barrier(3)
        errors = []
        try:

            def search():
                try:
                    barrier.wait()
                    for i in range(12):
                        rows = engine.lookup_batch(
                            [labels[i % len(labels)]], 4
                        )
                        for candidate in rows[0]:
                            assert candidate.entity_id in known
                            assert candidate.entity_id not in removed
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            def compact():
                try:
                    barrier.wait()
                    assert engine.compact() is True
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=search),
                threading.Thread(target=search),
                threading.Thread(target=compact),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
        finally:
            engine.close()
