"""Property-based differential, fault-injection and concurrency suites.

These tests drive the production index/serving stack through the
``repro.testing`` toolkit: seeded adversarial generators, a brute-force
oracle, and injectable fault plans.  CI runs them under a small
``REPRO_SEED`` matrix; any failure prints a ``REPRO_SEED=... REPRO_CASE=...``
replay line.
"""
