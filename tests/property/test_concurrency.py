"""Concurrency properties: QueryCache and LookupEngine under 8 threads.

Injected delays (shard-level and query-level) widen the race windows; the
assertions are about *accounting*: no lost or stranded
:class:`PendingLookup`, every handle resolves exactly once, and every
stats counter adds up after the storm.
"""

import threading

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.sharded import ShardedIndex
from repro.lookup.cache import QueryCache
from repro.serving.engine import LookupEngine
from repro.testing import FaultInjected, FaultPlan, QueryPoison, case_rng
from repro.text.tokenize import normalize

THREADS = 8


def hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise the first error."""
    errors = []
    barrier = threading.Barrier(threads)

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=run, args=(i,), name=f"hammer-{i}")
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestQueryCacheConcurrency:
    def test_counters_add_up_under_contention(self):
        cache = QueryCache(capacity=32, cache_results=True)
        gets_per_thread = 200

        def worker(ti):
            rng = case_rng(11, ti)
            for i in range(gets_per_thread):
                key = f"q{int(rng.integers(0, 48))}"
                vector = cache.get_embedding(key)
                if vector is None:
                    cache.put_embedding(key, np.full(4, float(ti)))
                else:
                    assert not vector.flags.writeable
                if i % 3 == 0:
                    row = cache.get_result(key, 5)
                    if row is None:
                        cache.put_result(key, 5, [ti])

        hammer(worker)
        stats = cache.stats
        assert stats.requests == stats.hits + stats.misses
        expected_gets = THREADS * (
            gets_per_thread + (gets_per_thread + 2) // 3
        )
        assert stats.requests == expected_gets
        assert 0.0 <= stats.hit_rate <= 1.0
        assert len(cache) <= 2 * 32

    def test_get_embeddings_memoizes_across_threads(self):
        """The batch memoizer never returns a wrong vector, and the
        embed function only ever sees keys missing at probe time."""
        cache = QueryCache(capacity=64)
        calls = []
        lock = threading.Lock()

        def embed(keys):
            with lock:
                calls.append(list(keys))
            # float32, like the production embed path the cache serves.
            return np.array(
                [[float(k[1:])] for k in keys], dtype=np.float32
            )

        def worker(ti):
            rng = case_rng(13, ti)
            for _ in range(50):
                keys = [
                    f"q{int(rng.integers(0, 20))}"
                    for _ in range(int(rng.integers(1, 5)))
                ]
                out = cache.get_embeddings(keys, embed)
                assert out.shape == (len(keys), 1)
                for key, row in zip(keys, out):
                    assert row[0] == float(key[1:])

        hammer(worker)
        # Duplicate embeds of one key are possible (two threads can miss
        # simultaneously — by design, the lock is not held across embed),
        # but far fewer than the uncached call count.
        embedded = sum(len(c) for c in calls)
        assert embedded < THREADS * 50


class TestEngineConcurrency:
    @pytest.fixture()
    def sharded_engine(self, trained_service):
        plan = FaultPlan.parse("*:*:delay:0.001")  # jitter the fan-out
        mentions, row_to_entity = trained_service.index_rows()
        vectors = trained_service.embed_queries(mentions)
        index = ShardedIndex(
            trained_service.config.embedding_dim,
            4,
            factory=FlatIndex,
            fault_hook=plan,
            shard_timeout=10.0,
        )
        index.add(vectors)
        engine = LookupEngine(
            trained_service,
            index,
            row_to_entity,
            cache=QueryCache(64, cache_results=True),
            max_batch_size=8,
            max_batch_age=0.002,
        )
        yield engine
        engine.close()

    def test_every_handle_resolves_exactly_once(
        self, sharded_engine, tiny_kg
    ):
        labels = [e.label for e in tiny_kg.entities()][:24]
        all_handles = []
        handle_lock = threading.Lock()

        def worker(ti):
            rng = case_rng(17, ti)
            mine = []
            for _ in range(20):
                label = labels[int(rng.integers(0, len(labels)))]
                mine.append(sharded_engine.submit(label, k=3))
            with handle_lock:
                all_handles.extend(mine)

        hammer(worker)
        sharded_engine.flush()
        assert sharded_engine.pending == 0
        assert len(all_handles) == THREADS * 20
        for handle in all_handles:
            assert handle.done
            assert handle.exception is None
            assert isinstance(handle.result, list)
            assert len(handle.result) > 0
        stats = sharded_engine.cache.stats
        assert stats.requests == stats.hits + stats.misses
        assert sharded_engine.serving_stats()["failed_queries"] == 0

    def test_stats_snapshots_stay_consistent_under_fanout(
        self, sharded_engine, tiny_kg
    ):
        """Readers hammering the stats APIs during fan-out always see an
        atomic snapshot: each dict is internally consistent even while
        writers are mid-update.  Runs under the lock-order sanitizer when
        ``REPRO_SANITIZER=1``, which additionally proves the stats paths
        never nest the engine, index, and cache locks inversely."""
        labels = [e.label for e in tiny_kg.entities()][:24]

        def worker(ti):
            rng = case_rng(23, ti)
            if ti % 2 == 0:  # writers drive the fan-out
                for _ in range(15):
                    label = labels[int(rng.integers(0, len(labels)))]
                    sharded_engine.submit(label, k=3)
                sharded_engine.flush()
            else:  # readers poll every stats surface
                for _ in range(60):
                    serving = sharded_engine.serving_stats()
                    assert serving["failed_queries"] >= 0
                    assert serving["partial_results"] >= 0
                    health = sharded_engine.index.health_stats()
                    assert (
                        health["total_searches"]
                        >= health["partial_searches"]
                    )
                    assert len(health["shards"]) == 4
                    cache = sharded_engine.cache.stats_dict()
                    assert cache["hits"] >= 0 and cache["misses"] >= 0
                    assert 0.0 <= cache["hit_rate"] <= 1.0

        hammer(worker)
        sharded_engine.flush()
        assert sharded_engine.pending == 0
        final = sharded_engine.serving_stats()
        assert final["failed_queries"] == 0
        stats = sharded_engine.cache.stats
        assert stats.requests == stats.hits + stats.misses

    def test_poisoned_queries_fail_alone_under_concurrency(
        self, sharded_engine, tiny_kg
    ):
        labels = [e.label for e in tiny_kg.entities()][:12]
        poisoned = {normalize(labels[0]), normalize(labels[5])}
        sharded_engine.fault_hook = QueryPoison(poisoned, delay=0.001)
        outcomes = []
        outcome_lock = threading.Lock()

        def worker(ti):
            rng = case_rng(19, ti)
            mine = []
            for _ in range(12):
                label = labels[int(rng.integers(0, len(labels)))]
                mine.append((label, sharded_engine.submit(label, k=3)))
            with outcome_lock:
                outcomes.extend(mine)

        hammer(worker)
        sharded_engine.flush()
        failed = clean = 0
        for label, handle in outcomes:
            assert handle.done
            if normalize(label) in poisoned:
                assert isinstance(handle.exception, FaultInjected), label
                failed += 1
            else:
                assert handle.exception is None, (
                    f"{label!r} failed: {handle.exception!r}"
                )
                assert len(handle.result) > 0
                clean += 1
        assert failed > 0 and clean > 0  # both populations exercised
        assert (
            sharded_engine.serving_stats()["failed_queries"] == failed
        )
