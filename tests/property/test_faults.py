"""Fault-injection properties for the hardened sharded serving path.

The acceptance property: over 100 seeded adversarial cases, a 4-shard
index with one shard killed returns the merged results of the three
survivors with ``partial=True`` — bit-identical to a manual fan-in of
the surviving shards — while the no-fault search over the same store is
bit-identical to the equivalent unsharded scan.
"""

import time

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.sharded import AllShardsFailedError, ShardedIndex
from repro.index.topk import merge_topk
from repro.serving.engine import LookupDeadlineExceeded
from repro.testing import (
    FaultInjected,
    FaultPlan,
    VectorStoreStrategy,
    assert_topk_equal,
    assert_valid_topk,
    case_rng,
    run_cases,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
)

NUM_SHARDS = 4


def build_sharded(dim, vectors, fault_hook=None, **kwargs):
    index = ShardedIndex(
        dim,
        NUM_SHARDS,
        factory=FlatIndex,
        fault_hook=fault_hook,
        **kwargs,
    )
    index.add(vectors)
    return index


def manual_fanin(vectors, queries, k, skip_shard=None):
    """Reference fan-in: search each shard's rows directly and merge.

    Uses the same striping (global id ``local * NUM_SHARDS + shard``) and
    the same per-shard sub-index shapes as ``ShardedIndex``, so the
    expected result is bit-identical by construction — no BLAS width
    caveat applies.
    """
    nq = len(queries)
    run_ids = np.full((nq, k), -1, dtype=np.int64)
    run_d = np.full((nq, k), np.inf, dtype=np.float64)
    for s in range(NUM_SHARDS):
        if s == skip_shard:
            continue
        rows = vectors[s::NUM_SHARDS]
        shard = FlatIndex(vectors.shape[1])
        shard.add(rows)
        result = shard.search(queries, k)
        remapped = np.where(
            result.ids >= 0, result.ids * NUM_SHARDS + s, np.int64(-1)
        )
        run_ids, run_d = merge_topk(
            run_ids, run_d, remapped, result.distances, k
        )
    return run_ids, run_d


class TestDegradedSearchProperty:
    def test_one_dead_shard_serves_survivors(self):
        """The 100-case acceptance property (see module docstring)."""
        started = time.monotonic()
        strategy = VectorStoreStrategy(
            conditioned=False, min_rows=NUM_SHARDS, max_rows=48
        )

        def prop(store):
            rng = case_rng(99, len(store.vectors))
            k = int(rng.integers(1, 12))
            dead = int(rng.integers(0, NUM_SHARDS))
            plan = FaultPlan.parse(f"s{dead}:c0:drop")
            faulted = build_sharded(
                store.dim, store.vectors, fault_hook=plan, shard_timeout=5.0
            )
            clean = build_sharded(store.dim, store.vectors)
            try:
                got = faulted.search(store.queries, k)
                assert got.partial is True
                assert got.failed_shards == (dead,)
                assert plan.fired >= 1
                assert_valid_topk(got, len(store.vectors), k, store.note)
                want = manual_fanin(
                    store.vectors, store.queries, k, skip_shard=dead
                )
                assert_topk_equal(got, want, context=f"dead={dead} {store.note}")

                healthy = clean.search(store.queries, k)
                assert healthy.partial is False
                assert healthy.failed_shards == ()
                assert_topk_equal(
                    healthy,
                    manual_fanin(store.vectors, store.queries, k),
                    context=f"no-fault {store.note}",
                )
            finally:
                faulted.close()
                clean.close()

        executed = run_cases(prop, strategy, name="degraded_search")
        elapsed = time.monotonic() - started
        assert executed == 100
        assert elapsed < 60.0, f"property took {elapsed:.1f}s (budget 60s)"

    def test_sharded_matches_unsharded_scan(self):
        """No-fault sharded search retrieves exactly what one flat index
        over the same store retrieves (ids after the round-robin remap)."""

        def prop(store):
            k = 5
            sharded = build_sharded(store.dim, store.vectors)
            flat = FlatIndex(store.dim)
            flat.add(store.vectors)
            try:
                got = sharded.search(store.queries, k)
                want = flat.search(store.queries, k)
                # Selection is exactly partition-invariant; flat *scores*
                # can differ by ~1 ulp with gemm width, so compare the
                # retrieved id sets and the sharded result against the
                # shape-exact manual fan-in.
                assert_topk_equal(
                    got, manual_fanin(store.vectors, store.queries, k)
                )
                for row in range(len(store.queries)):
                    got_set = set(got.ids[row].tolist())
                    want_set = set(want.ids[row].tolist())
                    assert got_set == want_set, (
                        f"query {row}: {sorted(got_set)} != {sorted(want_set)}"
                    )
            finally:
                sharded.close()

        run_cases(
            prop,
            VectorStoreStrategy(min_rows=8, max_rows=48),
            cases=50,
            name="sharded_vs_unsharded",
        )


class TestFaultKinds:
    def _store(self, n=32, dim=8, nq=3, seed_index=0):
        rng = case_rng(7, seed_index)
        vectors = rng.normal(size=(n, dim)).astype(np.float32)
        queries = rng.normal(size=(nq, dim)).astype(np.float32)
        return vectors, queries

    def test_transient_failure_is_retried(self):
        """A raise on the first call only: the in-thread retry succeeds,
        the result is complete, and the retry counter records it."""
        vectors, queries = self._store()
        plan = FaultPlan.parse("s2:c0:raise")
        index = build_sharded(8, vectors, fault_hook=plan, max_retries=1)
        try:
            got = index.search(queries, 5)
            assert got.partial is False
            assert_topk_equal(got, manual_fanin(vectors, queries, 5))
            health = index.health_stats()
            assert health["shards"][2]["retries"] == 1
            assert health["shards"][2]["failures"] == 0
            assert health["partial_searches"] == 0
        finally:
            index.close()

    def test_exhausted_retries_degrade(self):
        """drop keeps failing through the retry: the shard is dropped."""
        vectors, queries = self._store()
        plan = FaultPlan.parse("s1:c0:drop")
        index = build_sharded(8, vectors, fault_hook=plan, max_retries=1)
        try:
            got = index.search(queries, 5)
            assert got.partial is True and got.failed_shards == (1,)
            assert plan.calls(1) == 2  # first call + one retry
            health = index.health_stats()
            assert health["shards"][1]["failures"] == 1
            assert health["shards"][1]["retries"] == 1
        finally:
            index.close()

    def test_slow_shard_times_out(self):
        vectors, queries = self._store()
        plan = FaultPlan.parse("s3:*:delay:0.5")
        index = build_sharded(
            8, vectors, fault_hook=plan, shard_timeout=0.08, max_retries=0
        )
        try:
            started = time.monotonic()
            got = index.search(queries, 5)
            elapsed = time.monotonic() - started
            assert got.partial is True and got.failed_shards == (3,)
            assert elapsed < 0.45, f"search waited {elapsed:.2f}s past deadline"
            assert index.health_stats()["shards"][3]["timeouts"] == 1
            assert_topk_equal(
                got, manual_fanin(vectors, queries, 5, skip_shard=3)
            )
        finally:
            index.close()

    def test_corrupt_result_is_caught_by_differential(self):
        """The corrupt fault mispairs ids and distances; the corrupted
        fan-in must diverge from the honest reference fan-in."""
        vectors, queries = self._store()
        plan = FaultPlan.parse("s0:*:corrupt")
        index = build_sharded(8, vectors, fault_hook=plan)
        try:
            got = index.search(queries, 5)
            assert plan.fired >= 1
            with pytest.raises(AssertionError):
                assert_topk_equal(got, manual_fanin(vectors, queries, 5))
        finally:
            index.close()

    def test_all_shards_dead_raises(self):
        vectors, queries = self._store()
        plan = FaultPlan.parse("*:*:raise")
        index = build_sharded(8, vectors, fault_hook=plan)
        try:
            with pytest.raises(AllShardsFailedError):
                index.search(queries, 5)
        finally:
            index.close()

    def test_fail_fast_reraises_injected_error(self):
        vectors, queries = self._store()
        plan = FaultPlan.parse("s1:*:raise")
        index = build_sharded(8, vectors, fault_hook=plan, fail_fast=True)
        try:
            with pytest.raises(FaultInjected):
                index.search(queries, 5)
        finally:
            index.close()

    def test_kill_fault_respawns_worker_and_retry_recovers(self):
        """kill on the process executor: the worker serving the shard is
        terminated just before the request, crash detection respawns it,
        and the retried call serves the full (non-partial) result."""
        vectors, queries = self._store()
        plan = FaultPlan.parse("s2:c0:kill")
        index = build_sharded(
            8, vectors, fault_hook=plan, executor="process", max_retries=1
        )
        try:
            got = index.search(queries, 5)
            assert plan.fired >= 1
            assert got.partial is False
            assert_topk_equal(got, manual_fanin(vectors, queries, 5))
            health = index.health_stats()
            assert health["worker_respawns"] >= 1
            assert health["shards"][2]["respawns"] >= 1
            assert health["shards"][2]["retries"] == 1
            # The respawned pool keeps serving without fresh faults.
            again = index.search(queries, 5)
            assert again.partial is False
        finally:
            index.close()

    def test_kill_fault_is_inert_off_process_executor(self):
        vectors, queries = self._store()
        plan = FaultPlan.parse("s2:*:kill")
        index = build_sharded(
            8, vectors, fault_hook=plan, executor="thread"
        )
        try:
            got = index.search(queries, 5)
            assert got.partial is False
            assert_topk_equal(got, manual_fanin(vectors, queries, 5))
        finally:
            index.close()

    @pytest.mark.parametrize("executor", ["inline", "thread", "process"])
    def test_degradation_semantics_uniform_across_executors(self, executor):
        """PR 5's drop-the-dead-shard contract holds verbatim on every
        executor: same partial flag, same failed set, same merged ids."""
        vectors, queries = self._store()
        plan = FaultPlan.parse("s1:c0:drop")
        index = build_sharded(
            8, vectors, fault_hook=plan, executor=executor, max_retries=1
        )
        try:
            got = index.search(queries, 5)
            assert got.partial is True and got.failed_shards == (1,)
            assert plan.calls(1) == 2  # first call + one retry
            assert_topk_equal(
                got, manual_fanin(vectors, queries, 5, skip_shard=1)
            )
        finally:
            index.close()


class TestEngineFaults:
    @pytest.fixture()
    def engine_factory(self, trained_service):
        from repro.serving.engine import LookupEngine

        engines = []

        def build(**kwargs):
            engine = LookupEngine.from_pipeline(
                trained_service,
                num_shards=2,
                max_batch_size=64,
                max_batch_age=60.0,
                **kwargs,
            )
            engines.append(engine)
            return engine

        yield build
        for engine in engines:
            engine.close()

    def test_poisoned_query_fails_alone(self, engine_factory, tiny_kg):
        from repro.testing import QueryPoison
        from repro.text.tokenize import normalize

        labels = [e.label for e in tiny_kg.entities()][:6]
        poison = QueryPoison([normalize(labels[2])])
        engine = engine_factory(fault_hook=poison)
        handles = [engine.submit(label, k=3) for label in labels]
        engine.flush()
        for i, handle in enumerate(handles):
            assert handle.done
            if i == 2:
                assert isinstance(handle.exception, FaultInjected)
                with pytest.raises(FaultInjected):
                    handle.result
            else:
                assert handle.exception is None
                assert len(handle.result) > 0
        stats = engine.serving_stats()
        assert stats["failed_queries"] == 1
        assert stats["isolation_retries"] >= 1

    def test_batch_deadline_bounds_slow_serves(self, engine_factory, tiny_kg):
        from repro.testing import QueryPoison
        from repro.text.tokenize import normalize

        labels = [e.label for e in tiny_kg.entities()][:3]
        slow = QueryPoison([normalize(labels[0])], kind="delay", delay=0.2)
        engine = engine_factory(fault_hook=slow, batch_deadline=0.05)
        slow_handle = engine.submit(labels[0], k=3)
        ok_handle = engine.submit(labels[1], k=3)
        engine.flush()
        assert isinstance(slow_handle.exception, LookupDeadlineExceeded)
        assert ok_handle.exception is None and len(ok_handle.result) > 0
        assert engine.serving_stats()["deadline_hits"] >= 1

    def test_partial_index_results_still_serve(
        self, engine_factory, trained_service
    ):
        """A dead shard degrades engine results instead of failing them."""
        from repro.index.flat import FlatIndex
        from repro.serving.engine import LookupEngine

        mentions, row_to_entity = trained_service.index_rows()
        vectors = trained_service.embed_queries(mentions)
        plan = FaultPlan.parse("s1:c0:drop")
        index = ShardedIndex(
            trained_service.config.embedding_dim,
            2,
            factory=FlatIndex,
            fault_hook=plan,
            shard_timeout=5.0,
        )
        index.add(vectors)
        engine = LookupEngine(trained_service, index, row_to_entity)
        try:
            rows = engine.lookup_batch([mentions[0]], 3)
            assert len(rows[0]) > 0
            assert engine.serving_stats()["partial_results"] == 1
        finally:
            engine.close()
