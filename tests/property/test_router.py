"""Property tests for the tiered router (ISSUE 9 acceptance properties).

Three acceptance properties, each over seeded generated cases:

- **passthrough** — with no exact entries and no fuzzy tier, the router
  is a transparent wrapper: its answers equal the ANN service's answers
  verbatim;
- **exact supremacy** — a query whose normalized form is indexed gets
  *every* entity sharing that surface form, all at rank-1 score 1.0 —
  a superset of what a hash-embedding ANN tier would return at distance
  ~0 for the same string;
- **partition invariance** — a :class:`TypePartitionedIndex` union scan
  agrees with the brute-force oracle on adversarial stores, and with a
  shared pre-trained quantizer a partition-restricted PQ search is
  *bit*-identical to post-filtering the unpartitioned scan (the
  ``type_filter`` exactness claim).

The ANN stub embeds queries by hashing the *normalized* string through
``zlib.crc32`` (stable across processes, unlike ``hash()``), so equal
surface forms land on identical vectors.
"""

import zlib

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.partitioned import TypePartitionedIndex
from repro.index.pq import PQIndex
from repro.lookup import LabelHashTable, LookupRouter, normalize
from repro.lookup.base import Candidate, LookupService
from repro.testing import (
    LabelStrategy,
    VectorStoreStrategy,
    assert_topk_agrees,
    assert_topk_equal,
    assert_valid_topk,
    brute_force_topk,
    run_cases,
)

# Adversarial (unconditioned) stores contain ±inf on purpose; the flat
# kernel's inf arithmetic warnings are the scenario, not a defect.
pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
)

DIM = 12
CASES = 40


def hash_embed(queries: list[str]) -> np.ndarray:
    """Deterministic per-string embeddings, equal iff normalized-equal."""
    rows = []
    for query in queries:
        rng = np.random.default_rng(zlib.crc32(normalize(query).encode()))
        rows.append(rng.standard_normal(DIM))
    return np.asarray(rows, dtype=np.float32)


class HashAnnService(LookupService):
    """FlatIndex ANN over crc32-hash embeddings of surface forms."""

    name = "hash-ann"

    def __init__(self, entity_ids: list[str], forms: list[str]):
        super().__init__()
        self._ids = list(entity_ids)
        self._index = FlatIndex(DIM)
        self._index.add(hash_embed(forms))

    def _lookup_batch(self, queries, k):
        result = self._index.search(hash_embed(queries), k)
        return [
            [
                Candidate(self._ids[int(i)], -float(d))
                for i, d in zip(row_ids, row_d)
                if i >= 0
            ]
            for row_ids, row_d in zip(result.ids, result.distances)
        ]


def corpus_from(case: tuple[str, list[str]]) -> tuple[list[str], list[str]]:
    """One entity per surface form: ids e0.., forms label + aliases."""
    label, aliases = case
    forms = [label, *aliases]
    return [f"e{i}" for i in range(len(forms))], forms


class TestRouterPassthrough:
    def test_router_equals_pure_ann_when_no_tier_short_circuits(self):
        """Empty exact tier + no fuzzy tier == the bare ANN service."""

        def prop(case):
            ids, forms = corpus_from(case)
            ann = HashAnnService(ids, forms)
            router = LookupRouter(LabelHashTable(), ann=ann, fuzzy=None)
            queries = forms + [forms[0][::-1], "never indexed"]
            assert router.lookup_batch(queries, 3) == ann.lookup_batch(
                queries, 3
            )
            stats = router.router_stats()
            assert stats["exact_hits"] == 0 and stats["fuzzy_routed"] == 0
            assert stats["ann_routed"] == len(queries)

        run_cases(prop, LabelStrategy(num_aliases=3), cases=CASES)


class TestExactTier:
    def test_exact_hits_rank_every_sharer_at_score_one(self):
        """An indexed surface form answers with exactly the entities
        sharing its normalized form, all at score 1.0, never consulting
        the ANN tier — the deterministic statement of "rank-1 superset
        of the ANN answers" (hash embeddings give those same entities
        distance ~0)."""

        def prop(case):
            ids, forms = corpus_from(case)
            table = LabelHashTable()
            sharers: dict[str, list[str]] = {}
            for eid, form in zip(ids, forms):
                table.add(form, eid)
                key = normalize(form)
                if key and eid not in sharers.setdefault(key, []):
                    sharers[key].append(eid)
            ann = HashAnnService(ids, forms)
            router = LookupRouter(table, ann=ann, fuzzy=None)
            for form in forms:
                key = normalize(form)
                row = router.lookup(form, len(forms))
                if not key:
                    # Normalization emptied the query: exact tier cannot
                    # index it, the ANN tier answers instead.
                    assert row == ann.lookup(form, len(forms))
                    continue
                assert [c.entity_id for c in row] == sharers[key]
                assert all(c.score == 1.0 for c in row)

        run_cases(prop, LabelStrategy(num_aliases=3), cases=CASES)


def partition_keys(n: int) -> list[str]:
    """Deterministic keys (round-robin over <=3 partitions) so the
    VectorStoreStrategy's shrinking stays usable."""
    p = min(3, max(1, n))
    return [f"p{i % p}" for i in range(n)]


class TestPartitionInvariance:
    def test_flat_partition_union_agrees_with_oracle(self):
        def prop(store):
            n = len(store.vectors)
            k = min(5, n)
            index = TypePartitionedIndex(store.dim)
            index.add(store.vectors, partition_keys(n))
            got = index.search(store.queries, k)
            assert_valid_topk(got, n, k, context=store.note)
            oracle = brute_force_topk(store.vectors, store.queries, k)
            assert_topk_agrees(
                got, oracle, rtol=1e-6, atol=1e-9, context=store.note
            )

        run_cases(
            prop, VectorStoreStrategy(conditioned=False), cases=CASES
        )

    def test_pq_partition_filter_bit_identical_to_post_filtering(self):
        """Shared pre-trained codebooks make ADC distances independent
        of partitioning, so restricting the scan to one partition is
        bit-identical to post-filtering the full scan — the exactness
        guarantee ``type_filter`` rides on."""

        def prop(store):
            n = len(store.vectors)
            keys = partition_keys(n)
            m = max(d for d in (4, 2, 1) if store.dim % d == 0)

            def trained_pq(dim):
                sub = PQIndex(dim, m=m, seed=7)
                sub.train(store.vectors)
                return sub

            index = TypePartitionedIndex(store.dim, factory=trained_pq)
            index.add(store.vectors, keys)
            reference = trained_pq(store.dim)
            reference.add(store.vectors)

            k = min(4, n)
            got = index.search(store.queries, k, partitions=["p0"])
            full = reference.search(store.queries, n)
            want_ids = np.full((len(store.queries), k), -1, dtype=np.int64)
            want_d = np.full((len(store.queries), k), np.inf)
            for qi, (irow, drow) in enumerate(
                zip(full.ids, full.distances)
            ):
                kept = [
                    (i, d)
                    for i, d in zip(irow, drow)
                    if keys[int(i)] == "p0"
                ][:k]
                for col, (i, d) in enumerate(kept):
                    want_ids[qi, col] = i
                    want_d[qi, col] = d
            assert_topk_equal(got, (want_ids, want_d), context=store.note)

        run_cases(
            prop, VectorStoreStrategy(conditioned=True), cases=CASES
        )
