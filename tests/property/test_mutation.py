"""Mutation properties: seeded op interleavings, old-or-new, crash safety.

Three tiers of guarantees for the online-mutation path:

- **replay equivalence** (sequential) — an index mutated incrementally
  through any seeded add/remove/update/compact sequence serves results
  bit-identical to a *twin* built in one shot from the equivalent bulk
  state (same append order, same tombstones).  Runs over the flat family
  and sharded indexes under the inline, thread, and process executors.
- **old-or-new** (concurrent) — a lookup racing a mutation returns a
  result bit-identical to the pre-mutation oracle or the post-mutation
  oracle, never a mixture (torn read).  The mutator and the searchers
  start behind one barrier to maximise overlap.
- **crash safety** — a compaction killed at its swap point (the
  ``compact`` fault kind) leaves the old shard set serving bit-identical
  results, aborts all-or-nothing, and leaks no shared-memory segment; a
  mutation that lands mid-compaction aborts the swap the same way.

Failures replay with ``REPRO_SEED=<seed> REPRO_CASE=<index>`` (printed in
the failure message) and shrink to a minimal op sequence.
"""

import threading
from dataclasses import dataclass, replace

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.sharded import ShardedIndex
from repro.index.shm import owned_segment_names
from repro.testing import (
    FaultInjected,
    FaultPlan,
    assert_topk_equal,
    case_rng,
    run_cases,
)

DIM = 8
K = 5
NUM_SHARDS = 2


# -- case model -------------------------------------------------------------------


@dataclass(frozen=True)
class MutationCase:
    """A seeded mutation workload: initial rows plus an op sequence.

    Each op is ``(kind, op_seed, count)`` — the op's *content* (which
    rows to remove, what vectors to add) is derived from ``op_seed`` at
    execution time against the live set, so dropping ops during shrink
    never invalidates the survivors.
    """

    seed: int
    n_initial: int
    ops: tuple[tuple, ...]
    k: int = K

    def __repr__(self) -> str:
        kinds = ",".join(op[0] for op in self.ops)
        return (
            f"MutationCase(seed={self.seed}, n_initial={self.n_initial}, "
            f"k={self.k}, ops=[{kinds}])"
        )


class MutationStrategy:
    """Generates :class:`MutationCase`; shrinks by dropping ops, then rows."""

    OPS = ("add", "remove", "update", "compact")

    def generate(self, rng: np.random.Generator) -> MutationCase:
        n_initial = int(rng.integers(8, 48))
        n_ops = int(rng.integers(2, 9))
        ops = []
        for _ in range(n_ops):
            kind = self.OPS[int(rng.integers(0, len(self.OPS)))]
            ops.append((kind, int(rng.integers(0, 2**31)), int(rng.integers(1, 7))))
        return MutationCase(
            seed=int(rng.integers(0, 2**31)),
            n_initial=n_initial,
            ops=tuple(ops),
            k=int(rng.integers(1, K + 3)),
        )

    def shrink(self, case: MutationCase):
        for i in range(len(case.ops)):
            yield replace(case, ops=case.ops[:i] + case.ops[i + 1 :])
        if case.n_initial > 8:
            yield replace(case, n_initial=max(8, case.n_initial // 2))


class BulkModel:
    """Replayable bulk state: every row ever appended plus the dead set."""

    def __init__(self, initial: np.ndarray):
        self.rows = [initial]
        self.total = len(initial)
        self.dead: set[int] = set()

    def live_ids(self) -> list[int]:
        return [i for i in range(self.total) if i not in self.dead]

    def append(self, vectors: np.ndarray) -> None:
        self.rows.append(vectors)
        self.total += len(vectors)

    def matrix(self) -> np.ndarray:
        return np.concatenate(self.rows, axis=0)

    def compacted(self) -> None:
        """Mirror a compaction: live rows (old order) become the new state."""
        live = self.matrix()[self.live_ids()]
        self.rows = [live]
        self.total = len(live)
        self.dead = set()

    def twin(self, build) -> object:
        """A one-shot index over the current bulk state (same layout)."""
        index = build()
        matrix = self.matrix()
        index.train(matrix)
        index.add(matrix)
        if self.dead:
            index.remove(np.asarray(sorted(self.dead), dtype=np.int64))
        return index


def apply_op(index, model: BulkModel, op) -> None:
    """Apply one seeded op to both the live index and the bulk model."""
    kind, op_seed, count = op
    rng = case_rng(op_seed, 0)
    if kind == "add":
        vectors = rng.standard_normal((count, DIM)).astype(np.float32)
        index.add(vectors)
        model.append(vectors)
        return
    if kind == "compact":
        remap = index.compact()
        if model.dead:
            assert remap is not None
            live = model.live_ids()
            assert (
                remap[np.asarray(sorted(model.dead), dtype=np.int64)] == -1
            ).all()
            assert sorted(int(remap[i]) for i in live) == list(range(len(live)))
            model.compacted()
        else:
            assert remap is None  # nothing to reclaim: no swap, no remap
        return
    live = model.live_ids()
    if not live:
        return
    take = min(count, len(live))
    picked = sorted(
        int(i) for i in rng.choice(np.asarray(live), size=take, replace=False)
    )
    if kind == "remove":
        index.remove(np.asarray(picked, dtype=np.int64))
        model.dead.update(picked)
        return
    vectors = rng.standard_normal((take, DIM)).astype(np.float32)
    new_ids = index.update(np.asarray(picked, dtype=np.int64), vectors)
    assert len(new_ids) == take
    model.dead.update(picked)
    model.append(vectors)
    assert sorted(int(i) for i in new_ids) == list(
        range(model.total - take, model.total)
    )


def queries_for(case: MutationCase) -> np.ndarray:
    return case_rng(case.seed, 1).standard_normal((4, DIM)).astype(np.float32)


# -- replay equivalence -----------------------------------------------------------


class TestReplayEquivalence:
    """Incremental mutation == one-shot bulk build, after every op."""

    def check(self, case: MutationCase, build_live, build_twin) -> None:
        queries = queries_for(case)
        initial = (
            case_rng(case.seed, 2)
            .standard_normal((case.n_initial, DIM))
            .astype(np.float32)
        )
        model = BulkModel(initial)
        index = build_live()
        try:
            index.train(initial)
            index.add(initial)
            for step, op in enumerate(case.ops):
                apply_op(index, model, op)
                twin = model.twin(build_twin)
                try:
                    assert_topk_equal(
                        index.search(queries, case.k),
                        twin.search(queries, case.k),
                        context=f"after op {step} ({op[0]})",
                    )
                finally:
                    close = getattr(twin, "close", None)
                    if close:
                        close()
        finally:
            close = getattr(index, "close", None)
            if close:
                close()

    def test_flat_replay_equivalence(self):
        def prop(case):
            self.check(
                case, lambda: FlatIndex(DIM), lambda: FlatIndex(DIM)
            )

        run_cases(prop, MutationStrategy(), cases=40, name="flat_replay")

    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_sharded_replay_equivalence(self, executor):
        def prop(case):
            self.check(
                case,
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor=executor,
                ),
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="inline",
                ),
            )

        run_cases(
            prop,
            MutationStrategy(),
            cases=15,
            name=f"sharded_{executor}_replay",
        )

    def test_process_replay_equivalence(self):
        """Process workers observe every mutation (invalidate + re-export);
        the inline twin is the ground truth."""

        def prop(case):
            self.check(
                case,
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="process",
                    num_workers=2,
                ),
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="inline",
                ),
            )

        run_cases(prop, MutationStrategy(), cases=3, name="process_replay")
        assert owned_segment_names() == []


# -- old-or-new under concurrency -------------------------------------------------


class OldOrNewStrategy(MutationStrategy):
    """Cases with exactly one mutation op (the racing write)."""

    def generate(self, rng: np.random.Generator) -> MutationCase:
        case = super().generate(rng)
        kind = ("add", "remove", "update")[int(rng.integers(0, 3))]
        return replace(
            case, ops=((kind, int(rng.integers(0, 2**31)), 3),)
        )

    def shrink(self, case: MutationCase):
        if case.n_initial > 8:
            yield replace(case, n_initial=max(8, case.n_initial // 2))


class TestOldOrNew:
    """A lookup racing one mutation sees the old set or the new set —
    bit-identical to one of the two sequential oracles, never a blend."""

    SEARCHERS = 4
    ROUNDS = 6

    def check(self, case: MutationCase, build_live, build_twin) -> None:
        queries = queries_for(case)
        initial = (
            case_rng(case.seed, 2)
            .standard_normal((case.n_initial, DIM))
            .astype(np.float32)
        )
        model = BulkModel(initial)
        index = build_live()
        try:
            index.train(initial)
            index.add(initial)
            old_twin = model.twin(build_twin)
            old = old_twin.search(queries, case.k)
            barrier = threading.Barrier(self.SEARCHERS + 1)
            observed = [[] for _ in range(self.SEARCHERS)]
            errors = []

            def search(slot):
                try:
                    barrier.wait()
                    for _ in range(self.ROUNDS):
                        observed[slot].append(index.search(queries, case.k))
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            def mutate():
                barrier.wait()
                apply_op(index, model, case.ops[0])

            threads = [
                threading.Thread(target=search, args=(slot,))
                for slot in range(self.SEARCHERS)
            ] + [threading.Thread(target=mutate)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
            new_twin = model.twin(build_twin)
            new = new_twin.search(queries, case.k)
            for slot_results in observed:
                for result in slot_results:
                    matches_old = _equals(result, old)
                    matches_new = _equals(result, new)
                    assert matches_old or matches_new, (
                        f"torn read: {result.ids.tolist()} is neither the "
                        f"pre-mutation result {old.ids.tolist()} nor the "
                        f"post-mutation result {new.ids.tolist()}"
                    )
            close = getattr(old_twin, "close", None)
            if close:
                close()
            close = getattr(new_twin, "close", None)
            if close:
                close()
        finally:
            close = getattr(index, "close", None)
            if close:
                close()

    def test_flat_old_or_new(self):
        def prop(case):
            self.check(case, lambda: FlatIndex(DIM), lambda: FlatIndex(DIM))

        run_cases(prop, OldOrNewStrategy(), cases=20, name="flat_old_or_new")

    def test_sharded_thread_old_or_new(self):
        def prop(case):
            self.check(
                case,
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="thread",
                ),
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="inline",
                ),
            )

        run_cases(
            prop, OldOrNewStrategy(), cases=8, name="sharded_old_or_new"
        )

    def test_sharded_process_old_or_new(self):
        def prop(case):
            self.check(
                case,
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="process",
                    num_workers=2,
                ),
                lambda: ShardedIndex(
                    DIM,
                    NUM_SHARDS,
                    factory=lambda d: FlatIndex(d),
                    executor="inline",
                ),
            )

        run_cases(
            prop, OldOrNewStrategy(), cases=3, name="process_old_or_new"
        )
        assert owned_segment_names() == []


def _equals(got, want) -> bool:
    return np.array_equal(got.ids, want.ids) and np.array_equal(
        got.distances, want.distances
    )


# -- compaction crash safety ------------------------------------------------------


class TestCompactionCrash:
    @pytest.fixture()
    def populated(self, request):
        executor = request.param
        rng = case_rng(37, 0)
        vectors = rng.standard_normal((96, DIM)).astype(np.float32)
        queries = rng.standard_normal((5, DIM)).astype(np.float32)
        plan = FaultPlan.parse("*:c0:compact")
        index = ShardedIndex(
            DIM,
            NUM_SHARDS,
            factory=lambda d: FlatIndex(d),
            executor=executor,
            num_workers=2 if executor == "process" else None,
            fault_hook=plan,
        )
        index.train(vectors)
        index.add(vectors)
        index.remove(np.arange(0, 24, dtype=np.int64))
        yield index, plan, queries
        index.close()

    @pytest.mark.parametrize(
        "populated", ["inline", "thread", "process"], indirect=True
    )
    def test_crash_at_swap_leaves_old_shards_serving(self, populated):
        """The injected swap crash aborts all-or-nothing: bit-identical
        results from the old shard set, tombstones intact, no shm leak,
        and the *next* compaction attempt succeeds."""
        index, plan, queries = populated
        before = index.search(queries, 10)
        with pytest.raises(FaultInjected):
            index.compact()
        assert plan.fired == 1
        assert index.tombstone_count == 24
        assert_topk_equal(
            index.search(queries, 10), before, context="post-crash"
        )
        remap = index.compact()  # attempt c1 is not matched by the plan
        assert remap is not None
        assert index.tombstone_count == 0 and index.ntotal == 72
        after = index.search(queries, 10)
        assert np.array_equal(remap[before.ids], after.ids)
        np.testing.assert_array_equal(before.distances, after.distances)
        index.close()
        assert owned_segment_names() == []

    def test_mutation_mid_compaction_aborts_swap(self):
        """A mutation landing between build and swap bumps the epoch; the
        compaction must abort (return None) rather than publish shards
        that no longer reflect the store."""
        rng = case_rng(41, 0)
        vectors = rng.standard_normal((60, DIM)).astype(np.float32)
        queries = rng.standard_normal((4, DIM)).astype(np.float32)
        index = ShardedIndex(
            DIM, NUM_SHARDS, factory=lambda d: FlatIndex(d), executor="inline"
        )
        extra = rng.standard_normal((3, DIM)).astype(np.float32)

        class MutateAtSwap:
            def __init__(self):
                self.fired = 0

            def on_compaction(self, phase):
                if phase == "swap" and self.fired == 0:
                    self.fired += 1
                    index.add(extra)

        hook = MutateAtSwap()
        index.fault_hook = hook
        index.train(vectors)
        index.add(vectors)
        index.remove(np.arange(0, 10, dtype=np.int64))
        assert index.compact() is None  # epoch moved mid-build: abort
        assert hook.fired == 1
        assert index.tombstone_count == 10  # nothing reclaimed
        assert index.ntotal == 63  # the racing add landed
        got = index.search(extra, 1)
        assert (got.ids[:, 0] >= 60).all()
        index.fault_hook = None
        remap = index.compact()  # quiescent retry succeeds
        assert remap is not None and index.ntotal == 53
        index.close()
