"""Differential properties: production indexes vs the brute-force oracle.

Two assertion tiers, matching what the arithmetic actually guarantees:

- **exactness** — the selection/merge machinery is exactly
  partition-invariant, and PQ's ADC distances are computed per row in a
  fixed order, so PQ results are *bit-identical* across any block/shard
  partitioning and repeated flat searches are bit-identical to
  themselves;
- **agreement** — flat-scan *scores* come from BLAS matmuls whose
  rounding varies ~1 ulp with the gemm width, so cross-partition flat
  comparisons (and any production-vs-oracle comparison, where the
  kernels differ by construction) use :func:`assert_topk_agrees`, which
  permits reordering only inside oracle distance tie groups.
"""

import numpy as np
import pytest

from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.ivfpq import IVFPQIndex
from repro.index.lsh import LSHIndex
from repro.index.pq import PQIndex
from repro.index.sharded import ShardedIndex
from repro.testing import (
    GridStrategy,
    TupleStrategy,
    VectorStoreStrategy,
    assert_topk_agrees,
    assert_topk_equal,
    assert_valid_topk,
    brute_force_topk,
    case_rng,
    recall_at_k,
)

# The adversarial (unconditioned) stores contain ±inf on purpose; the
# production expansion kernel then emits inf-arithmetic warnings that are
# the scenario under test, not a defect.
pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
)

#: Tolerances for kernel-rounding disagreement (direct vs expansion form,
#: gemv vs gemm widths).  Absolute floor covers cancellation error at the
#: largest conditioned magnitudes the strategies emit.
RTOL = 1e-6
ATOL = 1e-9


def sharded_flat(dim, num_shards, block_size):
    return ShardedIndex(
        dim,
        num_shards,
        factory=lambda d: FlatIndex(d, block_size=block_size),
    )


class TestFlatDifferential:
    def test_flat_agrees_with_oracle_on_adversarial_stores(self):
        """Blocked flat scan == float64 oracle, over duplicate/near-tie/
        zero/huge/inf stores and degenerate (k, block) corners."""
        from repro.testing import run_cases

        strategy = TupleStrategy(
            VectorStoreStrategy(conditioned=False), GridStrategy()
        )

        def prop(case):
            store, grid = case
            index = FlatIndex(store.dim, block_size=grid.block_size)
            index.add(store.vectors)
            got = index.search(store.queries, grid.k)
            oracle = brute_force_topk(store.vectors, store.queries, grid.k)
            assert_valid_topk(
                got, len(store.vectors), grid.k, context=store.note
            )
            assert_topk_agrees(
                got, oracle, rtol=RTOL, atol=ATOL, context=store.note
            )

        run_cases(prop, strategy, name="flat_vs_oracle")

    def test_sharded_flat_agrees_with_oracle(self):
        """Sharded fan-in (including empty shards when n < num_shards)
        retrieves the oracle's neighbours for any grid corner."""
        from repro.testing import run_cases

        strategy = TupleStrategy(
            VectorStoreStrategy(conditioned=False), GridStrategy()
        )

        def prop(case):
            store, grid = case
            index = sharded_flat(store.dim, grid.num_shards, grid.block_size)
            index.add(store.vectors)
            try:
                got = index.search(store.queries, grid.k)
                oracle = brute_force_topk(
                    store.vectors, store.queries, grid.k
                )
                assert_valid_topk(
                    got, len(store.vectors), grid.k, context=store.note
                )
                assert_topk_agrees(
                    got, oracle, rtol=RTOL, atol=ATOL, context=store.note
                )
            finally:
                index.close()

        run_cases(prop, strategy, name="sharded_vs_oracle")

    def test_flat_search_is_deterministic(self):
        """Same index, same queries: repeated searches are bit-identical."""
        from repro.testing import run_cases

        strategy = VectorStoreStrategy(conditioned=False)

        def prop(store):
            index = FlatIndex(store.dim, block_size=7)
            index.add(store.vectors)
            first = index.search(store.queries, 5)
            second = index.search(store.queries, 5)
            assert_topk_equal(second, first, context=store.note)

        run_cases(prop, strategy, name="flat_determinism")


class TestPQDifferential:
    """PQ's ADC path is bit-exact across partitionings: the per-row table
    sums run in fixed subspace order, so blocking and sharding change
    nothing — the strongest differential guarantee in the index family."""

    def test_pq_partition_invariance_is_bit_exact(self):
        from repro.testing import run_cases

        strategy = TupleStrategy(VectorStoreStrategy(), GridStrategy())

        def prop(case):
            store, grid = case
            reference = PQIndex(store.dim, m=1, nbits=4, seed=0)
            reference.train(store.vectors)
            reference.add(store.vectors)
            want = reference.search(store.queries, grid.k)

            blocked = PQIndex(
                store.dim, m=1, nbits=4, seed=0, block_size=grid.block_size
            )
            blocked.train(store.vectors)
            blocked.add(store.vectors)
            assert_topk_equal(
                blocked.search(store.queries, grid.k),
                want,
                context=f"block={grid.block_size} {store.note}",
            )

            sharded = ShardedIndex(
                store.dim,
                grid.num_shards,
                factory=lambda d: PQIndex(d, m=1, nbits=4, seed=0),
            )
            sharded.train(store.vectors)
            sharded.add(store.vectors)
            try:
                assert_topk_equal(
                    sharded.search(store.queries, grid.k),
                    want,
                    context=f"shards={grid.num_shards} {store.note}",
                )
            finally:
                sharded.close()

        # PQ trains a k-means codebook per case; keep the budget modest.
        run_cases(prop, strategy, cases=25, name="pq_partition_invariance")

    def test_pq_recall_against_oracle(self):
        """Quantized distances lose precision, not candidates wholesale."""
        rng = case_rng(0, 0)
        recalls = []
        for case_index in range(5):
            rng = case_rng(0, case_index)
            vectors = rng.normal(size=(64, 8)).astype(np.float32)
            queries = vectors[:8] + rng.normal(size=(8, 8)).astype(
                np.float32
            ) * 0.01
            index = PQIndex(8, m=4, nbits=8, seed=0)
            index.train(vectors)
            index.add(vectors)
            got = index.search(queries, 5)
            oracle = brute_force_topk(vectors, queries, 5)
            assert_valid_topk(got, 64, 5)
            recalls.append(recall_at_k(got.ids, oracle[0]))
        assert np.mean(recalls) >= 0.6, recalls


class TestANNRecallFloors:
    """Approximate families: structural validity on every case, plus a
    conservative mean-recall floor against the oracle (per family)."""

    CASES = 8

    def _store(self, case_index, n=96, dim=16):
        rng = case_rng(0, case_index)
        # Clustered data: ANN structures are built for it, and it keeps
        # the floors meaningful instead of vacuous.
        centers = rng.normal(size=(6, dim)) * 4.0
        assignments = rng.integers(0, 6, size=n)
        vectors = (
            centers[assignments] + rng.normal(size=(n, dim)) * 0.3
        ).astype(np.float32)
        queries = vectors[:10] + rng.normal(size=(10, dim)).astype(
            np.float32
        ) * 0.05
        return vectors, queries

    def _check_family(self, build, floor, k=10):
        recalls = []
        for case_index in range(self.CASES):
            vectors, queries = self._store(case_index)
            index = build(vectors.shape[1], case_index)
            index.train(vectors)
            index.add(vectors)
            got = index.search(queries, k)
            assert_valid_topk(got, len(vectors), k, context=type(index).__name__)
            oracle = brute_force_topk(vectors, queries, k)
            recalls.append(recall_at_k(got.ids, oracle[0]))
        mean = float(np.mean(recalls))
        assert mean >= floor, f"mean recall {mean:.3f} < floor {floor}: {recalls}"

    def test_ivf_flat_recall_floor(self):
        self._check_family(
            lambda dim, i: IVFFlatIndex(dim, nlist=6, nprobe=3, seed=i),
            floor=0.6,
        )

    def test_ivfpq_recall_floor(self):
        self._check_family(
            lambda dim, i: IVFPQIndex(
                dim, nlist=6, m=4, nbits=8, nprobe=3, seed=i
            ),
            floor=0.4,
        )

    def test_lsh_recall_floor(self):
        self._check_family(
            lambda dim, i: LSHIndex(dim, nbits=12, ntables=8, seed=i),
            floor=0.4,
        )

    def test_hnsw_recall_floor(self):
        self._check_family(
            lambda dim, i: HNSWIndex(
                dim, m=8, ef_construction=48, ef_search=32, seed=i
            ),
            floor=0.8,
        )
