"""Tests for KG persistence."""

import json

import pytest

from repro.kg.io import load_kg_json, save_kg_json
from repro.kg.synthetic import SyntheticKGConfig, generate_kg


class TestRoundtrip:
    def test_summary_preserved(self, tmp_path, tiny_kg):
        path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, path)
        loaded = load_kg_json(path)
        assert loaded.summary() == tiny_kg.summary()

    def test_entities_preserved(self, tmp_path, tiny_kg):
        path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, path)
        loaded = load_kg_json(path)
        for entity in tiny_kg.entities():
            other = loaded.entity(entity.entity_id)
            assert other.label == entity.label
            assert other.aliases == entity.aliases
            assert other.type_ids == entity.type_ids

    def test_facts_preserved(self, tmp_path, tiny_kg):
        path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, path)
        loaded = load_kg_json(path)
        original = {(f.subject_id, f.property_id, f.object_id, f.literal)
                    for f in tiny_kg.facts()}
        restored = {(f.subject_id, f.property_id, f.object_id, f.literal)
                    for f in loaded.facts()}
        assert original == restored

    def test_mention_index_rebuilt(self, tmp_path, tiny_kg):
        path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, path)
        loaded = load_kg_json(path)
        assert loaded.exact_lookup("deutschland") == tiny_kg.exact_lookup(
            "deutschland"
        )

    def test_creates_parent_dirs(self, tmp_path, tiny_kg):
        path = tmp_path / "a" / "b" / "kg.json"
        save_kg_json(tiny_kg, path)
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_kg_json(tmp_path / "absent.json")

    def test_bad_version(self, tmp_path):
        path = tmp_path / "kg.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            load_kg_json(path)
