"""Integrity tests for the curated seed data.

The seed core is hand-written; these tests guard against the editing
mistakes hand-curated data attracts (dangling references, duplicate keys,
un-normalised strings).
"""

from repro.kg.seed_data import seed_entity_specs, seed_properties, seed_type_specs
from repro.text.tokenize import normalize


def test_type_ids_unique():
    types = seed_type_specs()
    ids = [t[0] for t in types]
    assert len(ids) == len(set(ids))


def test_type_parents_exist():
    types = seed_type_specs()
    ids = {t[0] for t in types}
    for type_id, _, parent in types:
        assert parent is None or parent in ids, type_id


def test_type_hierarchy_acyclic():
    parents = {t[0]: t[2] for t in seed_type_specs()}
    for start in parents:
        seen = set()
        current = start
        while current is not None:
            assert current not in seen, f"cycle through {current}"
            seen.add(current)
            current = parents[current]


def test_property_ids_unique():
    props = seed_properties()
    ids = [p[0] for p in props]
    assert len(ids) == len(set(ids))


def test_entity_keys_unique():
    entities, _ = seed_entity_specs()
    keys = [e[0] for e in entities]
    assert len(keys) == len(set(keys))


def test_entity_types_exist():
    entities, _ = seed_entity_specs()
    type_ids = {t[0] for t in seed_type_specs()}
    for key, _, _, types in entities:
        assert types, key
        assert all(t in type_ids for t in types), key


def test_facts_reference_known_keys_and_properties():
    entities, facts = seed_entity_specs()
    keys = {e[0] for e in entities}
    property_ids = {p[0] for p in seed_properties()}
    for subject, prop, obj, is_literal in facts:
        assert subject in keys, subject
        assert prop in property_ids, prop
        if not is_literal:
            assert obj in keys, (subject, prop, obj)


def test_strings_pre_normalised():
    """Labels and aliases must already be lowercase ASCII — the generator
    relies on this to keep the mention index consistent."""
    entities, _ = seed_entity_specs()
    for _, label, aliases, _ in entities:
        assert label == normalize(label), label
        for alias in aliases:
            assert alias == normalize(alias), alias


def test_papers_running_examples_present():
    """The aliases the paper argues with must exist in the core."""
    entities, _ = seed_entity_specs()
    by_label = {label: set(aliases) for _, label, aliases, _ in entities}
    assert {"deutschland", "frg", "brd"} <= by_label["germany"]
    assert "eu" in by_label["european union"]
    assert "william gates" in by_label["bill gates"]


def test_every_capital_fact_targets_a_country():
    entities, facts = seed_entity_specs()
    types_by_key = {e[0]: set(e[3]) for e in entities}
    for subject, prop, obj, is_literal in facts:
        if prop == "capital_of" and not is_literal:
            assert "capital" in types_by_key[subject] or "city" in types_by_key[subject]
            assert "country" in types_by_key[obj]
