"""Tests for the synthetic KG generator."""

import numpy as np
import pytest

from repro.kg.synthetic import SyntheticKGConfig, generate_kg


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticKGConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_entities": 0},
            {"flavour": "freebase"},
            {"min_aliases": 5, "max_aliases": 2},
            {"ambiguity_rate": 1.5},
            {"facts_per_entity": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticKGConfig(**kwargs)


class TestGeneration:
    def test_entity_count_honoured(self, small_kg):
        assert small_kg.num_entities == 400

    def test_deterministic(self):
        a = generate_kg(SyntheticKGConfig(num_entities=250, seed=9))
        b = generate_kg(SyntheticKGConfig(num_entities=250, seed=9))
        assert [e.entity_id for e in a.entities()] == [
            e.entity_id for e in b.entities()
        ]
        assert [e.label for e in a.entities()] == [e.label for e in b.entities()]

    def test_different_seeds_differ(self):
        a = generate_kg(SyntheticKGConfig(num_entities=250, seed=1))
        b = generate_kg(SyntheticKGConfig(num_entities=250, seed=2))
        assert [e.label for e in a.entities()] != [e.label for e in b.entities()]

    def test_seed_core_present(self, small_kg):
        germany = small_kg.exact_lookup("germany")
        assert germany
        entity = small_kg.entity(next(iter(germany)))
        assert "deutschland" in entity.aliases

    def test_semantic_alias_examples(self, small_kg):
        """The paper's running examples must resolve through aliases."""
        for alias, label in [
            ("deutschland", "germany"),
            ("eu", "european union"),
            ("william gates", "bill gates"),
        ]:
            ids = small_kg.exact_lookup(alias)
            assert any(small_kg.entity(i).label == label for i in ids), alias

    def test_all_entities_typed(self, small_kg):
        assert all(e.type_ids for e in small_kg.entities())

    def test_facts_reference_known_entities(self, small_kg):
        for fact in small_kg.facts():
            assert small_kg.has_entity(fact.subject_id)
            if fact.object_id is not None:
                assert small_kg.has_entity(fact.object_id)


class TestAliasDistribution:
    def test_matches_paper_statistics(self):
        """Paper: vast majority of entities have >= 3 aliases; 95 % < 50."""
        kg = generate_kg(SyntheticKGConfig(num_entities=1200, seed=4))
        counts = np.asarray(list(kg.alias_counts().values()))
        assert (counts >= 3).mean() > 0.6
        assert np.percentile(counts, 95) < 50

    def test_alias_bounds_respected(self):
        kg = generate_kg(
            SyntheticKGConfig(num_entities=300, min_aliases=0, max_aliases=2, seed=1)
        )
        seed_count = 163  # curated entities keep their real aliases
        synth = list(kg.entities())[seed_count:]
        assert all(len(e.aliases) <= 2 for e in synth)


class TestFlavours:
    def test_wikidata_ids(self):
        kg = generate_kg(SyntheticKGConfig(num_entities=200, flavour="wikidata"))
        assert all(e.entity_id.startswith("Q") for e in kg.entities())

    def test_dbpedia_ids(self):
        kg = generate_kg(SyntheticKGConfig(num_entities=200, flavour="dbpedia"))
        assert all(e.entity_id.startswith("dbr:") for e in kg.entities())

    def test_dbpedia_ids_unique_under_homonyms(self):
        kg = generate_kg(
            SyntheticKGConfig(
                num_entities=400, flavour="dbpedia", ambiguity_rate=0.3, seed=2
            )
        )
        ids = [e.entity_id for e in kg.entities()]
        assert len(ids) == len(set(ids))


class TestAmbiguity:
    def test_homonyms_generated(self):
        kg = generate_kg(
            SyntheticKGConfig(num_entities=600, ambiguity_rate=0.2, seed=3)
        )
        labels = [e.label for e in kg.entities()]
        assert len(set(labels)) < len(labels)

    def test_ambiguity_rate_scales_homonyms(self):
        def duplicate_fraction(rate):
            kg = generate_kg(
                SyntheticKGConfig(num_entities=700, ambiguity_rate=rate, seed=3)
            )
            labels = [e.label for e in kg.entities()]
            return 1.0 - len(set(labels)) / len(labels)

        # Deliberate homonyms dominate accidental name collisions.
        assert duplicate_fraction(0.3) > duplicate_fraction(0.0) + 0.1
