"""Tests for repro.kg.schema."""

import pytest

from repro.kg.schema import Entity, EntityType, Fact, Property


class TestEntity:
    def test_mentions_is_label_plus_aliases(self):
        entity = Entity("Q1", "germany", ("deutschland", "frg"))
        assert entity.mentions == ("germany", "deutschland", "frg")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Entity("", "germany")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Entity("Q1", "")

    def test_frozen(self):
        entity = Entity("Q1", "germany")
        with pytest.raises(AttributeError):
            entity.label = "france"


class TestFact:
    def test_entity_fact(self):
        fact = Fact("Q1", "capital_of", object_id="Q2")
        assert fact.is_entity_fact

    def test_literal_fact(self):
        fact = Fact("Q1", "population", literal="83000000")
        assert not fact.is_entity_fact

    def test_both_object_and_literal_rejected(self):
        with pytest.raises(ValueError):
            Fact("Q1", "p", object_id="Q2", literal="x")

    def test_neither_rejected(self):
        with pytest.raises(ValueError):
            Fact("Q1", "p")


class TestTypeAndProperty:
    def test_type_fields(self):
        t = EntityType("city", "city", "place")
        assert t.parent_id == "place"

    def test_root_type(self):
        assert EntityType("thing", "thing").parent_id is None

    def test_property_fields(self):
        p = Property("capital_of", "capital of")
        assert p.property_id == "capital_of"
