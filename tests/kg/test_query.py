"""Tests for the triple-pattern query engine."""

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.query import is_variable, query
from repro.kg.schema import Entity, EntityType, Fact, Property


@pytest.fixture
def kg() -> KnowledgeGraph:
    return KnowledgeGraph.build(
        types=[EntityType("thing", "thing"), EntityType("country", "country", "thing"),
               EntityType("city", "city", "thing")],
        properties=[Property("capital_of", "capital of"),
                    Property("member_of", "member of"),
                    Property("population", "population")],
        entities=[
            Entity("Q1", "germany", (), ("country",)),
            Entity("Q2", "berlin", (), ("city",)),
            Entity("Q3", "france", (), ("country",)),
            Entity("Q4", "paris", (), ("city",)),
            Entity("Q5", "eu", (), ("thing",)),
        ],
        facts=[
            Fact("Q2", "capital_of", object_id="Q1"),
            Fact("Q4", "capital_of", object_id="Q3"),
            Fact("Q1", "member_of", object_id="Q5"),
            Fact("Q3", "member_of", object_id="Q5"),
            Fact("Q1", "population", literal="83000000"),
        ],
    )


class TestBasicPatterns:
    def test_is_variable(self):
        assert is_variable("?x")
        assert not is_variable("Q1")

    def test_fully_constant_pattern(self, kg):
        assert query(kg, [("Q2", "capital_of", "Q1")]) == [{}]
        assert query(kg, [("Q2", "capital_of", "Q3")]) == []

    def test_single_variable(self, kg):
        out = query(kg, [("?c", "capital_of", "Q1")])
        assert out == [{"?c": "Q2"}]

    def test_two_variables(self, kg):
        out = query(kg, [("?c", "capital_of", "?k")])
        pairs = {(b["?c"], b["?k"]) for b in out}
        assert pairs == {("Q2", "Q1"), ("Q4", "Q3")}

    def test_variable_property(self, kg):
        out = query(kg, [("Q1", "?p", "?o")])
        props = {b["?p"] for b in out}
        assert props == {"member_of", "population"}

    def test_literal_object(self, kg):
        out = query(kg, [("Q1", "population", "?pop")])
        assert out == [{"?pop": "83000000"}]

    def test_empty_patterns(self, kg):
        assert query(kg, []) == []

    def test_malformed_pattern_rejected(self, kg):
        with pytest.raises(ValueError):
            query(kg, [("?a", "b")])  # type: ignore[list-item]


class TestJoins:
    def test_two_hop_join(self, kg):
        """Capitals of EU members."""
        out = query(
            kg,
            [("?city", "capital_of", "?country"),
             ("?country", "member_of", "Q5")],
        )
        cities = {b["?city"] for b in out}
        assert cities == {"Q2", "Q4"}

    def test_join_respects_shared_variable(self, kg):
        out = query(
            kg,
            [("?x", "capital_of", "?y"), ("?y", "population", "?p")],
        )
        assert out == [{"?x": "Q2", "?y": "Q1", "?p": "83000000"}]

    def test_repeated_variable_within_pattern(self, kg):
        # ?x related to itself — no self-loops in this graph.
        assert query(kg, [("?x", "member_of", "?x")]) == []

    def test_unsatisfiable_join(self, kg):
        out = query(
            kg,
            [("?c", "capital_of", "?k"), ("?k", "capital_of", "?z")],
        )
        assert out == []

    def test_limit(self, kg):
        out = query(kg, [("?s", "?p", "?o")], limit=2)
        assert len(out) <= 2


class TestOnGeneratedGraph:
    def test_capitals_of_eu_members(self, tiny_kg):
        eu = next(iter(tiny_kg.exact_lookup("european union")))
        out = query(
            tiny_kg,
            [("?city", "capital_of", "?country"),
             ("?country", "member_of", eu)],
        )
        assert out
        labels = {tiny_kg.entity(b["?city"]).label for b in out}
        assert "berlin" in labels
