"""Tests for repro.kg.graph (KnowledgeGraph)."""

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.schema import Entity, EntityType, Fact, Property


@pytest.fixture
def kg() -> KnowledgeGraph:
    return KnowledgeGraph.build(
        types=[
            EntityType("thing", "thing"),
            EntityType("place", "place", "thing"),
            EntityType("country", "country", "place"),
            EntityType("city", "city", "place"),
            EntityType("capital", "capital", "city"),
        ],
        properties=[
            Property("capital_of", "capital of"),
            Property("population", "population"),
        ],
        entities=[
            Entity("Q1", "germany", ("deutschland", "frg"), ("country",)),
            Entity("Q2", "berlin", (), ("capital",)),
            Entity("Q3", "munich", (), ("city",)),
        ],
        facts=[
            Fact("Q2", "capital_of", object_id="Q1"),
            Fact("Q1", "population", literal="83000000"),
        ],
    )


class TestRegistration:
    def test_duplicate_entity_rejected(self, kg):
        with pytest.raises(ValueError):
            kg.add_entity(Entity("Q1", "again"))

    def test_duplicate_type_rejected(self, kg):
        with pytest.raises(ValueError):
            kg.add_type(EntityType("country", "country"))

    def test_unknown_type_reference_rejected(self, kg):
        with pytest.raises(KeyError):
            kg.add_entity(Entity("Q9", "x", type_ids=("nope",)))

    def test_unknown_parent_type_rejected(self):
        kg = KnowledgeGraph()
        with pytest.raises(KeyError):
            kg.add_type(EntityType("child", "child", "missing_parent"))

    def test_fact_with_unknown_subject_rejected(self, kg):
        with pytest.raises(KeyError):
            kg.add_fact(Fact("Q99", "capital_of", object_id="Q1"))

    def test_fact_with_unknown_property_rejected(self, kg):
        with pytest.raises(KeyError):
            kg.add_fact(Fact("Q1", "nope", object_id="Q2"))

    def test_fact_with_unknown_object_rejected(self, kg):
        with pytest.raises(KeyError):
            kg.add_fact(Fact("Q1", "capital_of", object_id="Q99"))


class TestAccess:
    def test_counts(self, kg):
        assert kg.num_entities == 3
        assert kg.num_facts == 2

    def test_entity_lookup_by_id(self, kg):
        assert kg.entity("Q1").label == "germany"

    def test_unknown_entity_raises(self, kg):
        with pytest.raises(KeyError):
            kg.entity("Q99")

    def test_has_entity(self, kg):
        assert kg.has_entity("Q1")
        assert not kg.has_entity("Q99")


class TestMentionIndex:
    def test_exact_lookup_label(self, kg):
        assert kg.exact_lookup("germany") == {"Q1"}

    def test_exact_lookup_alias(self, kg):
        assert kg.exact_lookup("deutschland") == {"Q1"}

    def test_lookup_is_normalised(self, kg):
        assert kg.exact_lookup("  GERMANY ") == {"Q1"}

    def test_miss_returns_empty(self, kg):
        assert kg.exact_lookup("atlantis") == set()

    def test_mention_strings(self, kg):
        mentions = kg.mention_strings()
        assert "deutschland" in mentions
        assert "berlin" in mentions


class TestTypeHierarchy:
    def test_entities_of_type_direct(self, kg):
        assert kg.entities_of_type("city") == ["Q3"]

    def test_entities_of_type_transitive(self, kg):
        assert set(kg.entities_of_type("city", transitive=True)) == {"Q2", "Q3"}

    def test_descendants(self, kg):
        assert kg.descendant_types("place") == {"country", "city", "capital"}

    def test_ancestors(self, kg):
        assert kg.ancestor_types("capital") == ["city", "place", "thing"]

    def test_root_has_no_ancestors(self, kg):
        assert kg.ancestor_types("thing") == []

    def test_unknown_type_raises(self, kg):
        with pytest.raises(KeyError):
            kg.entities_of_type("nope")

    def test_cycle_detected(self):
        kg = KnowledgeGraph()
        kg.add_type(EntityType("a", "a"))
        kg.add_type(EntityType("b", "b", "a"))
        # Manufacture a cycle by mutating internals (defensive check).
        kg._types["a"] = EntityType("a", "a", "b")
        with pytest.raises(ValueError):
            kg.ancestor_types("a")


class TestAdjacency:
    def test_facts_about(self, kg):
        facts = kg.facts_about("Q2")
        assert len(facts) == 1
        assert facts[0].object_id == "Q1"

    def test_facts_mentioning(self, kg):
        assert len(kg.facts_mentioning("Q1")) == 1

    def test_neighbors_bidirectional(self, kg):
        assert kg.neighbors("Q1") == {"Q2"}
        assert kg.neighbors("Q2") == {"Q1"}

    def test_related(self, kg):
        assert kg.related("Q1", "Q2")
        assert not kg.related("Q1", "Q3")

    def test_literal_facts_not_in_neighbors(self, kg):
        assert "83000000" not in kg.neighbors("Q1")


class TestExport:
    def test_to_networkx(self, kg):
        graph = kg.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 1  # literal fact excluded

    def test_summary(self, kg):
        summary = kg.summary()
        assert summary["entities"] == 3
        assert summary["facts"] == 2

    def test_alias_counts(self, kg):
        assert kg.alias_counts()["Q1"] == 2
