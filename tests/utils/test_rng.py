"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, as_rng, derive_rng, new_rng


class TestNewRng:
    def test_returns_generator(self):
        assert isinstance(new_rng(0), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert new_rng(7).integers(0, 1000) == new_rng(7).integers(0, 1000)

    def test_different_seeds_diverge(self):
        a = new_rng(1).integers(0, 2**60)
        b = new_rng(2).integers(0, 2**60)
        assert a != b

    def test_none_seed_allowed(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestAsRng:
    def test_passes_through_generator(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen

    def test_coerces_int(self):
        assert isinstance(as_rng(5), np.random.Generator)

    def test_coerces_none(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_derived_streams_differ_by_stream_id(self):
        parent1 = np.random.default_rng(0)
        parent2 = np.random.default_rng(0)
        child_a = derive_rng(parent1, 1)
        child_b = derive_rng(parent2, 2)
        assert child_a.integers(0, 2**60) != child_b.integers(0, 2**60)

    def test_deterministic_given_parent_state(self):
        a = derive_rng(np.random.default_rng(9), 4).integers(0, 2**60)
        b = derive_rng(np.random.default_rng(9), 4).integers(0, 2**60)
        assert a == b


class TestRngMixin:
    def test_lazy_rng_creation(self):
        class Thing(RngMixin):
            pass

        thing = Thing()
        assert isinstance(thing.rng, np.random.Generator)

    def test_seed_resets_stream(self):
        class Thing(RngMixin):
            pass

        thing = Thing()
        thing.seed(11)
        first = thing.rng.integers(0, 2**60)
        thing.seed(11)
        assert thing.rng.integers(0, 2**60) == first
