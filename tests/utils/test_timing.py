"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Stopwatch, Timer, format_duration


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(2.5) == "2.50s"

    def test_milliseconds(self):
        assert format_duration(0.0125) == "12.50ms"

    def test_microseconds(self):
        assert format_duration(3.4e-5) == "34.00us"

    def test_nanoseconds(self):
        assert format_duration(5e-8) == "50ns"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_initial_elapsed_zero(self):
        assert Timer().elapsed == 0.0


class TestStopwatch:
    def test_accumulates_windows(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                time.sleep(0.002)
        assert sw.count == 3
        assert sw.total >= 0.005

    def test_mean(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.mean == pytest.approx(sw.total)

    def test_mean_zero_when_unused(self):
        assert Stopwatch().mean == 0.0

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.total == 0.0
        assert sw.count == 0
