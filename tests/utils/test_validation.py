"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_positive,
    check_probability,
    check_type,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1.5)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_allows_zero_when_flagged(self):
        check_positive("x", 0, allow_zero=True)

    def test_rejects_negative_even_with_flag(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, allow_zero=True)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", value)


class TestCheckType:
    def test_accepts_match(self):
        check_type("n", 3, int)

    def test_accepts_tuple_of_types(self):
        check_type("n", 3.0, (int, float))

    def test_rejects_mismatch_with_names(self):
        with pytest.raises(TypeError, match="str"):
            check_type("n", 3, str)
