"""Integration tests for the EmbLookup pipeline (uses the session-scoped
``trained_service`` fixture to avoid retraining per test)."""

import numpy as np
import pytest

from repro.core.config import EmbLookupConfig
from repro.core.pipeline import EmbLookup, LookupResult
from repro.index.flat import FlatIndex
from repro.index.pq import PQIndex


class TestLifecycle:
    def test_lookup_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            EmbLookup().lookup("germany")

    def test_build_index_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            EmbLookup().build_index()

    def test_fit_populates_components(self, trained_service):
        assert trained_service.model is not None
        assert trained_service.index is not None
        assert trained_service.encoder is not None
        assert len(trained_service.training_history) == (
            trained_service.config.epochs
        )


class TestLookup:
    def test_returns_k_results(self, trained_service):
        results = trained_service.lookup("germany", k=5)
        assert len(results) == 5
        assert all(isinstance(r, LookupResult) for r in results)

    def test_distances_sorted(self, trained_service):
        results = trained_service.lookup("berlin", k=10)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_exact_label_hits_top1(self, trained_service, tiny_kg):
        """A clean label should resolve to its own entity first."""
        hits = 0
        labels = [e.label for e in list(tiny_kg.entities())[:30]]
        for label in labels:
            results = trained_service.lookup(label, k=1)
            if tiny_kg.entity(results[0].entity_id).label == label:
                hits += 1
        assert hits >= 24  # homonyms make 100 % impossible

    def test_batch_matches_single(self, trained_service):
        queries = ["germany", "paris", "bill gates"]
        batch = trained_service.lookup_batch(queries, k=3)
        singles = [trained_service.lookup(q, k=3) for q in queries]
        assert [[r.entity_id for r in row] for row in batch] == [
            [r.entity_id for r in row] for row in singles
        ]

    def test_invalid_k(self, trained_service):
        with pytest.raises(ValueError):
            trained_service.lookup("x", k=0)

    def test_empty_batch(self, trained_service):
        assert trained_service.lookup_batch([], k=3) == []

    def test_queries_normalised(self, trained_service):
        upper = trained_service.lookup("GERMANY", k=3)
        lower = trained_service.lookup("germany", k=3)
        assert [r.entity_id for r in upper] == [r.entity_id for r in lower]


class TestIndexVariants:
    def test_pq_index_by_default(self, trained_service):
        assert isinstance(trained_service.index, PQIndex)

    def test_no_compression_uses_flat(self, tiny_kg):
        cfg = EmbLookupConfig(
            epochs=0, triplets_per_entity=2, fasttext_epochs=0,
            compression="none", seed=0,
        )
        service = EmbLookup(cfg)
        service.fit(tiny_kg)
        assert isinstance(service.index, FlatIndex)

    def test_alias_indexing_dedupes_entities(self, tiny_kg):
        cfg = EmbLookupConfig(
            epochs=0, triplets_per_entity=2, fasttext_epochs=0,
            compression="none", index_entity_aliases=True, seed=0,
        )
        service = EmbLookup(cfg)
        service.fit(tiny_kg)
        assert service.index.ntotal > tiny_kg.num_entities
        results = service.lookup("germany", k=10)
        ids = [r.entity_id for r in results]
        assert len(ids) == len(set(ids))


class TestTrainingBehaviour:
    def test_training_reduces_offline_loss(self, tiny_kg):
        """With hard mining disabled the mean epoch loss must decrease
        (online epochs average over *hard* triplets only, so their raw
        numbers are not comparable across the phase switch)."""
        cfg = EmbLookupConfig(
            epochs=4,
            hard_mining_start=1.0,  # stay offline for all epochs
            triplets_per_entity=6,
            fasttext_epochs=0,
            compression="none",
            seed=3,
        )
        service = EmbLookup(cfg)
        service.fit(tiny_kg)
        history = service.training_history
        assert history[-1] < history[0]

    def test_custom_triplets_accepted(self, tiny_kg):
        from repro.triplets.mining import Triplet

        cfg = EmbLookupConfig(
            epochs=1, fasttext_epochs=0, compression="none", seed=0
        )
        service = EmbLookup(cfg)
        triplets = [Triplet("germany", "germny", "france")] * 8
        service.fit(tiny_kg, triplets=triplets)
        assert service.index is not None


class TestPersistence:
    def test_save_load_roundtrip(self, trained_service, tiny_kg, tmp_path):
        trained_service.save(tmp_path / "model")
        restored = EmbLookup.load(tmp_path / "model", tiny_kg)
        queries = ["germany", "berlni", "deutschland"]
        original = trained_service.lookup_batch(queries, k=5)
        loaded = restored.lookup_batch(queries, k=5)
        # Embeddings identical => same candidates (PQ retrain uses the same
        # derived seed, so even the compressed index agrees).
        for a, b in zip(original, loaded):
            assert {r.entity_id for r in a} == {r.entity_id for r in b}

    def test_save_before_fit_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            EmbLookup().save(tmp_path)

    def test_load_missing_raises(self, tmp_path, tiny_kg):
        with pytest.raises(FileNotFoundError):
            EmbLookup.load(tmp_path / "absent", tiny_kg)
