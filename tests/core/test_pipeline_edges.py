"""Edge-case behaviour of the EmbLookup pipeline."""

import numpy as np
import pytest

from repro.core.config import EmbLookupConfig
from repro.core.pipeline import EmbLookup


class TestQueryEdgeCases:
    def test_empty_string_query(self, trained_service):
        """An empty query embeds to *something* and returns k candidates
        rather than crashing (all-padding one-hot input)."""
        results = trained_service.lookup("", k=5)
        assert len(results) == 5

    def test_very_long_query_truncated(self, trained_service):
        long_query = "germany" * 50
        results = trained_service.lookup(long_query, k=3)
        assert len(results) == 3

    def test_unicode_query_normalised(self, trained_service, tiny_kg):
        germany = next(iter(tiny_kg.exact_lookup("germany")))
        accented = trained_service.lookup("Gérmany", k=5)
        assert germany in [r.entity_id for r in accented]

    def test_out_of_alphabet_characters(self, trained_service):
        """Characters unseen at alphabet-fit time map to the unknown row."""
        results = trained_service.lookup("日本 germany", k=3)
        assert len(results) == 3

    def test_k_exceeding_corpus(self, trained_service, tiny_kg):
        results = trained_service.lookup("germany", k=10_000)
        assert len(results) == tiny_kg.num_entities

    def test_whitespace_only_query(self, trained_service):
        assert len(trained_service.lookup("   ", k=2)) == 2


class TestConfigInteractions:
    def test_zero_epochs_still_functional(self, tiny_kg):
        """Untrained (random CNN + pre-trained fastText) still answers —
        the pipeline must degrade, not break."""
        service = EmbLookup(
            EmbLookupConfig(
                epochs=0, triplets_per_entity=2, fasttext_epochs=1,
                compression="none", seed=0,
            )
        )
        service.fit(tiny_kg)
        assert len(service.lookup("germany", k=5)) == 5

    def test_ivfpq_compression_option(self, tiny_kg):
        from repro.index.ivfpq import IVFPQIndex

        service = EmbLookup(
            EmbLookupConfig(
                epochs=0, triplets_per_entity=2, fasttext_epochs=0,
                compression="ivfpq", ivf_nlist=8, ivf_nprobe=4, seed=0,
            )
        )
        service.fit(tiny_kg)
        assert isinstance(service.index, IVFPQIndex)
        assert len(service.lookup("germany", k=5)) == 5

    def test_normalized_embeddings_unit_length(self, trained_service):
        vectors = trained_service.model.embed(["germany", "berlin", "x"])
        norms = np.linalg.norm(vectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-4)

    def test_unnormalized_option(self, tiny_kg):
        service = EmbLookup(
            EmbLookupConfig(
                epochs=0, triplets_per_entity=2, fasttext_epochs=0,
                compression="none", normalize_output=False, seed=0,
            )
        )
        service.fit(tiny_kg)
        vectors = service.model.embed(["germany", "berlin"])
        norms = np.linalg.norm(vectors, axis=1)
        assert not np.allclose(norms, 1.0, atol=1e-3)
