"""Tests for EmbLookupConfig."""

import pytest

from repro.core.config import EmbLookupConfig


class TestValidation:
    def test_defaults_valid(self):
        EmbLookupConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"embedding_dim": 0},
            {"embedding_dim": 60, "pq_m": 8},  # not divisible
            {"max_length": 0},
            {"epochs": -1},
            {"batch_size": 0},
            {"margin": 0.0},
            {"hard_mining_start": 1.5},
            {"compression": "zip"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EmbLookupConfig(**kwargs)

    def test_mining_config_derived(self):
        cfg = EmbLookupConfig(triplets_per_entity=33, seed=5)
        assert cfg.mining.triplets_per_entity == 33
        assert cfg.mining.seed == 5

    def test_paper_defaults(self):
        cfg = EmbLookupConfig.paper_defaults()
        assert cfg.embedding_dim == 64
        assert cfg.epochs == 100
        assert cfg.batch_size == 128
        assert cfg.triplets_per_entity == 100
        assert cfg.compression == "pq"
        # 64-d float32 = 256 bytes compressed to pq_m = 8 bytes.
        assert cfg.embedding_dim * 4 == 256
        assert cfg.pq_m == 8

    def test_frozen(self):
        cfg = EmbLookupConfig()
        with pytest.raises(AttributeError):
            cfg.epochs = 5
