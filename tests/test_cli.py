"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.kg import save_kg_json


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_kg_defaults(self):
        args = build_parser().parse_args(["generate-kg", "--out", "x.json"])
        assert args.entities == 2000
        assert args.flavour == "wikidata"


class TestLifecycle:
    def test_generate_kg(self, tmp_path, capsys):
        out = tmp_path / "kg.json"
        rc = main(["generate-kg", "--entities", "200", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "200 entities" in capsys.readouterr().out

    def test_train_lookup_evaluate(self, tmp_path, tiny_kg, capsys):
        kg_path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, kg_path)
        model_dir = tmp_path / "model"

        rc = main([
            "train", "--kg", str(kg_path), "--out", str(model_dir),
            "--epochs", "1", "--triplets", "3",
        ])
        assert rc == 0
        assert (model_dir / "model.npz").exists()
        capsys.readouterr()

        rc = main([
            "lookup", "--kg", str(kg_path), "--model", str(model_dir),
            "--k", "3", "germany", "berlin",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "germany:" in out
        assert out.count("d=") == 6

        rc = main([
            "evaluate", "--kg", str(kg_path), "--model", str(model_dir),
            "--sample", "40", "--k", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "success@10" in out
        assert "clean" in out and "noisy" in out

    def test_lookup_without_queries_fails(self, tmp_path, tiny_kg, monkeypatch):
        kg_path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, kg_path)
        model_dir = tmp_path / "model"
        main([
            "train", "--kg", str(kg_path), "--out", str(model_dir),
            "--epochs", "0", "--triplets", "2",
        ])
        monkeypatch.setattr("sys.stdin.isatty", lambda: True)
        rc = main(["lookup", "--kg", str(kg_path), "--model", str(model_dir)])
        assert rc == 1
