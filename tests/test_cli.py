"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.kg import save_kg_json


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_kg_defaults(self):
        args = build_parser().parse_args(["generate-kg", "--out", "x.json"])
        assert args.entities == 2000
        assert args.flavour == "wikidata"


class TestLifecycle:
    def test_generate_kg(self, tmp_path, capsys):
        out = tmp_path / "kg.json"
        rc = main(["generate-kg", "--entities", "200", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "200 entities" in capsys.readouterr().out

    def test_train_lookup_evaluate(self, tmp_path, tiny_kg, capsys):
        kg_path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, kg_path)
        model_dir = tmp_path / "model"

        rc = main([
            "train", "--kg", str(kg_path), "--out", str(model_dir),
            "--epochs", "1", "--triplets", "3",
        ])
        assert rc == 0
        assert (model_dir / "model.npz").exists()
        capsys.readouterr()

        rc = main([
            "lookup", "--kg", str(kg_path), "--model", str(model_dir),
            "--k", "3", "germany", "berlin",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "germany:" in out
        assert out.count("d=") == 6

        rc = main([
            "evaluate", "--kg", str(kg_path), "--model", str(model_dir),
            "--sample", "40", "--k", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "success@10" in out
        assert "clean" in out and "noisy" in out

    def test_lookup_without_queries_fails(self, tmp_path, tiny_kg, monkeypatch):
        kg_path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, kg_path)
        model_dir = tmp_path / "model"
        main([
            "train", "--kg", str(kg_path), "--out", str(model_dir),
            "--epochs", "0", "--triplets", "2",
        ])
        monkeypatch.setattr("sys.stdin.isatty", lambda: True)
        rc = main(["lookup", "--kg", str(kg_path), "--model", str(model_dir)])
        assert rc == 1


class TestLintCommand:
    def write_hot_module(self, tmp_path, source):
        pkg = tmp_path / "repro" / "nn"
        pkg.mkdir(parents=True)
        target = pkg / "module.py"
        target.write_text(source)
        return target

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write_hot_module(
            tmp_path, "import numpy as np\nx = np.zeros(3, dtype=np.float32)\n"
        )
        rc = main(["lint", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "no new findings" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        self.write_hot_module(tmp_path, "import numpy as np\nx = np.zeros(3)\n")
        rc = main(["lint", str(tmp_path), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REP101" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        self.write_hot_module(tmp_path, "import numpy as np\nx = np.zeros(3)\n")
        rc = main(["lint", str(tmp_path), "--no-baseline", "--format", "json"])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["total"] == 1
        assert document["findings"][0]["rule"] == "REP101"

    def test_baseline_workflow(self, tmp_path, capsys):
        """write-baseline freezes findings; the next run exits clean."""
        self.write_hot_module(tmp_path, "import numpy as np\nx = np.zeros(3)\n")
        baseline = tmp_path / "baseline.json"
        rc = main([
            "lint", str(tmp_path), "--baseline", str(baseline), "--write-baseline",
        ])
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()
        rc = main(["lint", str(tmp_path), "--baseline", str(baseline)])
        assert rc == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        self.write_hot_module(tmp_path, "x = 1\n")
        rc = main(["lint", str(tmp_path), "--no-baseline", "--select", "REP777"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "nope"), "--no-baseline"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_profile_perf_selects_only_rep5(self, tmp_path, capsys):
        import json

        # One dtype violation (REP101) and one loop allocation (REP501);
        # the perf profile must surface only the latter.
        self.write_hot_module(
            tmp_path,
            "import numpy as np\n"
            "x = np.zeros(3)\n"
            "def f(n):\n"
            "    for _ in range(n):\n"
            "        a = np.zeros(3, dtype=np.float32)\n",
        )
        rc = main([
            "lint", str(tmp_path), "--no-baseline",
            "--profile", "perf", "--format", "json",
        ])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert [r["rule"] for r in document["findings"]] == ["REP501"]

    def test_profile_grad_selects_only_rep6(self, tmp_path, capsys):
        import json

        self.write_hot_module(
            tmp_path,
            "from repro.nn.layers import Module\n"
            "class Net(Module):\n"
            "    def forward(self, x):\n"
            "        return x.data\n",
        )
        rc = main([
            "lint", str(tmp_path), "--no-baseline",
            "--profile", "grad", "--format", "json",
        ])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert [r["rule"] for r in document["findings"]] == ["REP602"]

    def test_profile_and_select_conflict_exits_two(self, tmp_path, capsys):
        self.write_hot_module(tmp_path, "x = 1\n")
        rc = main([
            "lint", str(tmp_path), "--no-baseline",
            "--profile", "perf", "--select", "REP101",
        ])
        assert rc == 2
        assert "--profile" in capsys.readouterr().err


class TestRacecheckCommand:
    def write_serving_module(self, tmp_path, source):
        pkg = tmp_path / "repro" / "index"
        pkg.mkdir(parents=True)
        target = pkg / "module.py"
        target.write_text(source)
        return target

    def test_repo_passes_its_own_racecheck(self, capsys):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        rc = main([
            "racecheck", str(root / "src" / "repro"),
            "--baseline", str(root / "tools" / "lint_baseline.json"),
        ])
        assert rc == 0
        assert "racecheck OK" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write_serving_module(
            tmp_path,
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n",
        )
        rc = main(["racecheck", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "racecheck OK" in capsys.readouterr().out

    def test_unguarded_write_exits_one(self, tmp_path, capsys):
        self.write_serving_module(
            tmp_path,
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1\n",
        )
        rc = main(["racecheck", str(tmp_path), "--no-baseline"])
        assert rc == 1
        assert "REP701" in capsys.readouterr().out

    def test_only_rep7_rules_run(self, tmp_path, capsys):
        # A dtype violation (REP101) must not surface through racecheck.
        self.write_serving_module(
            tmp_path, "import numpy as np\nx = np.zeros(3)\n"
        )
        rc = main(["racecheck", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "racecheck OK" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        self.write_serving_module(
            tmp_path,
            "def drain(conn):\n"
            "    return conn.recv()\n",
        )
        rc = main([
            "racecheck", str(tmp_path), "--no-baseline", "--format", "json",
        ])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert [r["rule"] for r in document["findings"]] == ["REP706"]

    def test_missing_path_exits_two(self, tmp_path, capsys):
        rc = main(["racecheck", str(tmp_path / "nope"), "--no-baseline"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err


class TestArchcheckCommand:
    def repo_args(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        return [
            "archcheck", str(root / "src" / "repro"),
            "--contract", str(root / "tools" / "arch_contract.toml"),
        ]

    def write_contract(self, tmp_path, body):
        contract = tmp_path / "contract.toml"
        contract.write_text(body)
        return contract

    def write_tree(self, tmp_path, files):
        for rel, source in files.items():
            target = tmp_path / "src" / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        return tmp_path / "src"

    def test_repo_satisfies_its_own_contract(self, capsys):
        rc = main(self.repo_args())
        assert rc == 0
        out = capsys.readouterr().out
        assert "architecture contract OK" in out
        assert "runtime import edges" in out

    def test_layer_violation_exits_one(self, tmp_path, capsys):
        tree = self.write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a/__init__.py": "",
            "repro/a/x.py": "from repro.b import y\n",
            "repro/b/__init__.py": "",
            "repro/b/y.py": "",
        })
        contract = self.write_contract(
            tmp_path, '[project]\nroot = "repro"\n[layers]\na = []\nb = []\n'
        )
        rc = main(["archcheck", str(tree), "--contract", str(contract)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "ARC001" in out
        assert "'a' may not import from 'b'" in out

    def test_seeded_cycle_exits_one(self, tmp_path, capsys):
        tree = self.write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a.py": "from repro import b\n",
            "repro/b.py": "from repro import a\n",
        })
        contract = self.write_contract(
            tmp_path,
            '[project]\nroot = "repro"\nforbid_cycles = true\n'
            '[layers]\na = ["b"]\nb = ["a"]\n',
        )
        rc = main(["archcheck", str(tree), "--contract", str(contract)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "ARC002" in out
        assert "repro.a -> repro.b -> repro.a" in out

    def test_missing_contract_exits_two(self, tmp_path, capsys):
        rc = main([
            "archcheck", str(tmp_path),
            "--contract", str(tmp_path / "absent.toml"),
        ])
        assert rc == 2
        assert "absent.toml" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        import json

        tree = self.write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a/__init__.py": "",
            "repro/a/x.py": "from repro.b import y\n",
            "repro/b/__init__.py": "",
            "repro/b/y.py": "",
        })
        contract = self.write_contract(
            tmp_path, '[project]\nroot = "repro"\n[layers]\na = []\nb = []\n'
        )
        rc = main([
            "archcheck", str(tree), "--contract", str(contract),
            "--format", "json",
        ])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert [r["rule"] for r in document["findings"]] == ["ARC001"]
        assert document["findings"][0]["severity"] == "error"


class TestShapecheckCommand:
    def test_default_config_accepted(self, capsys):
        rc = main(["shapecheck"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK: dual tower is shape/dtype consistent -> (N, 64) float32" in out
        assert "compresses to 8 B codes" in out

    def test_mis_sized_mlp_rejected(self, capsys):
        rc = main(["shapecheck", "--mlp-in", "100"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "fuse1" in err and "128" in err

    def test_pq_indivisible_dim_rejected(self, capsys):
        rc = main(["shapecheck", "--dim", "60"])
        assert rc == 1
        assert "divisible" in capsys.readouterr().err
