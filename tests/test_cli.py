"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.kg import save_kg_json


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_kg_defaults(self):
        args = build_parser().parse_args(["generate-kg", "--out", "x.json"])
        assert args.entities == 2000
        assert args.flavour == "wikidata"


class TestLifecycle:
    def test_generate_kg(self, tmp_path, capsys):
        out = tmp_path / "kg.json"
        rc = main(["generate-kg", "--entities", "200", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "200 entities" in capsys.readouterr().out

    def test_train_lookup_evaluate(self, tmp_path, tiny_kg, capsys):
        kg_path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, kg_path)
        model_dir = tmp_path / "model"

        rc = main([
            "train", "--kg", str(kg_path), "--out", str(model_dir),
            "--epochs", "1", "--triplets", "3",
        ])
        assert rc == 0
        assert (model_dir / "model.npz").exists()
        capsys.readouterr()

        rc = main([
            "lookup", "--kg", str(kg_path), "--model", str(model_dir),
            "--k", "3", "germany", "berlin",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "germany:" in out
        assert out.count("d=") == 6

        rc = main([
            "evaluate", "--kg", str(kg_path), "--model", str(model_dir),
            "--sample", "40", "--k", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "success@10" in out
        assert "clean" in out and "noisy" in out

    def test_lookup_without_queries_fails(self, tmp_path, tiny_kg, monkeypatch):
        kg_path = tmp_path / "kg.json"
        save_kg_json(tiny_kg, kg_path)
        model_dir = tmp_path / "model"
        main([
            "train", "--kg", str(kg_path), "--out", str(model_dir),
            "--epochs", "0", "--triplets", "2",
        ])
        monkeypatch.setattr("sys.stdin.isatty", lambda: True)
        rc = main(["lookup", "--kg", str(kg_path), "--model", str(model_dir)])
        assert rc == 1


class TestLintCommand:
    def write_hot_module(self, tmp_path, source):
        pkg = tmp_path / "repro" / "nn"
        pkg.mkdir(parents=True)
        target = pkg / "module.py"
        target.write_text(source)
        return target

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write_hot_module(
            tmp_path, "import numpy as np\nx = np.zeros(3, dtype=np.float32)\n"
        )
        rc = main(["lint", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "no new findings" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        self.write_hot_module(tmp_path, "import numpy as np\nx = np.zeros(3)\n")
        rc = main(["lint", str(tmp_path), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REP101" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        self.write_hot_module(tmp_path, "import numpy as np\nx = np.zeros(3)\n")
        rc = main(["lint", str(tmp_path), "--no-baseline", "--format", "json"])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["total"] == 1
        assert document["findings"][0]["rule"] == "REP101"

    def test_baseline_workflow(self, tmp_path, capsys):
        """write-baseline freezes findings; the next run exits clean."""
        self.write_hot_module(tmp_path, "import numpy as np\nx = np.zeros(3)\n")
        baseline = tmp_path / "baseline.json"
        rc = main([
            "lint", str(tmp_path), "--baseline", str(baseline), "--write-baseline",
        ])
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()
        rc = main(["lint", str(tmp_path), "--baseline", str(baseline)])
        assert rc == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        self.write_hot_module(tmp_path, "x = 1\n")
        rc = main(["lint", str(tmp_path), "--no-baseline", "--select", "REP777"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "nope"), "--no-baseline"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err


class TestShapecheckCommand:
    def test_default_config_accepted(self, capsys):
        rc = main(["shapecheck"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK: dual tower is shape/dtype consistent -> (N, 64) float32" in out
        assert "compresses to 8 B codes" in out

    def test_mis_sized_mlp_rejected(self, capsys):
        rc = main(["shapecheck", "--mlp-in", "100"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "fuse1" in err and "128" in err

    def test_pq_indivisible_dim_rejected(self, capsys):
        rc = main(["shapecheck", "--dim", "60"])
        assert rc == 1
        assert "divisible" in capsys.readouterr().err
